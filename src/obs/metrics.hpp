#pragma once
/// \file metrics.hpp
/// Named metrics registry: counters, gauges, and Log2Histogram-backed
/// histograms keyed by (component, name) plus an optional label for
/// scoped instances of the same metric — e.g. per-replica
/// ("fleet", "served", "replica=3") or per-tenant
/// ("fleet", "goodput", "tenant=1"). Components hold on to the
/// returned handle pointers, so the per-update cost is one pointer
/// indirection plus the arithmetic — and components only fetch handles
/// when telemetry is enabled, so the disabled path never touches the
/// registry at all.
///
/// Snapshots are deterministic: entries export in (component, name,
/// label) order regardless of registration order, so two runs producing
/// the same update sequence serialize byte-identical JSON. Unlabeled
/// entries serialize exactly as before the label dimension existed (no
/// "label" field), so pre-existing consumers see unchanged bytes.

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <tuple>
#include <utility>

#include "util/stats.hpp"

namespace cxlgraph::obs {

/// Monotonic event/byte counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-value gauge that also tracks the high-water mark.
class Gauge {
 public:
  void set(double v) noexcept {
    if (updates_ == 0 || v > max_) max_ = v;
    value_ = v;
    ++updates_;
  }
  double value() const noexcept { return value_; }
  double max() const noexcept { return max_; }
  std::uint64_t updates() const noexcept { return updates_; }

 private:
  double value_ = 0.0;
  double max_ = 0.0;
  std::uint64_t updates_ = 0;
};

class MetricsRegistry {
 public:
  /// Handles are stable for the registry's lifetime; re-registering the
  /// same (component, name, label) returns the existing instrument.
  /// Registering a key that already exists with a different kind throws.
  /// The label defaults to empty — the unlabeled metric — and distinct
  /// labels are distinct instruments (they may even differ in kind).
  Counter& counter(const std::string& component, const std::string& name,
                   const std::string& label = std::string());
  Gauge& gauge(const std::string& component, const std::string& name,
               const std::string& label = std::string());
  util::Log2Histogram& histogram(const std::string& component,
                                 const std::string& name,
                                 const std::string& label = std::string());

  std::size_t size() const noexcept { return entries_.size(); }

  /// Writes a `{"metrics": [...]}` JSON snapshot sorted by
  /// (component, name, label) — the export format behind --metrics-out.
  /// Labeled entries carry a "label" field; unlabeled entries omit it.
  void write_json(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    Counter counter;
    Gauge gauge;
    util::Log2Histogram histogram;
  };

  Entry& entry(const std::string& component, const std::string& name,
               const std::string& label, Kind kind);

  // std::map keeps the export order sorted; unique_ptr keeps handles
  // stable across inserts.
  std::map<std::tuple<std::string, std::string, std::string>,
           std::unique_ptr<Entry>>
      entries_;
};

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(const std::string& s);

/// Formats a double for JSON: shortest representation that round-trips,
/// never NaN/Inf (clamped to 0 with a lossless fallback for integers).
std::string json_number(double v);

}  // namespace cxlgraph::obs
