#pragma once
/// \file health.hpp
/// Online health monitor: streaming detectors over the observability
/// feeds the serving layer already produces, folding them into a
/// deterministic, sim-time-stamped incident log.
///
/// Detectors:
///  - *saturation*: per-replica waiting depth sustained above the
///    scale-up threshold (the same comparison the elastic controller
///    acts on, so its decisions can consume the verdict bit-for-bit);
///  - *underload*: depth below the scale-down threshold;
///  - *queue trend*: N consecutive strictly-rising depth observations —
///    an early-warning ramp signal that fires before saturation does;
///  - *throttle*: thermal-throttle onset/exit per replica;
///  - *slo violations*: violation rate over a sliding completion window.
///
/// The monitor is pure bookkeeping — it never schedules events, reads
/// clocks, or mutates simulation state — so feeding it is identity-safe
/// and an incident log is a deterministic function of the run. Each
/// incident records open/close times, severity (escalating with the
/// observed peak), the threshold crossed, and evidence (peak / last
/// value / observation count).

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace cxlgraph::obs {

enum class IncidentKind : std::uint8_t {
  kSaturation,
  kUnderload,
  kQueueTrend,
  kThrottle,
  kSloViolations,
  kReplicaDown,    ///< replica crashed (fault layer)
  kIoErrorBurst,   ///< transient I/O error window on a replica
  kLinkDegraded,   ///< fleet interconnect derate / outage window
};

enum class IncidentSeverity : std::uint8_t { kInfo, kWarning, kCritical };

const char* to_string(IncidentKind kind) noexcept;
const char* to_string(IncidentSeverity severity) noexcept;

struct Incident {
  std::uint32_t id = 0;  ///< sequential by open order
  IncidentKind kind = IncidentKind::kSaturation;
  IncidentSeverity severity = IncidentSeverity::kInfo;
  std::string subject;           ///< "fleet" or "replica<k>"
  util::SimTime opened_ps = 0;
  util::SimTime closed_ps = 0;   ///< meaningful only when !open
  bool open = true;              ///< still open at end of run
  double threshold = 0.0;        ///< detector threshold that was crossed
  double peak = 0.0;             ///< worst value observed while open
  double last = 0.0;             ///< value at the most recent observation
  std::uint64_t observations = 0;  ///< evidence: samples folded in
};

struct HealthConfig {
  double depth_high = 8.0;  ///< saturation: per-replica waiting depth >
  double depth_low = 1.0;   ///< underload: per-replica waiting depth <
  std::uint32_t trend_run = 4;    ///< consecutive rising depth samples
  std::uint32_t slo_window = 16;  ///< completions per violation window
  double slo_rate = 0.5;          ///< violation fraction that opens
};

class HealthMonitor {
 public:
  /// What a depth observation means under the configured thresholds;
  /// the elastic controller keys its grow/shrink decision off this.
  enum class DepthVerdict : std::uint8_t {
    kNominal,
    kOverloaded,
    kUnderloaded,
  };

  HealthMonitor() = default;
  explicit HealthMonitor(const HealthConfig& config) : config_(config) {}

  /// Feeds one per-replica mean waiting-depth sample (the elastic
  /// controller's decision variable) and returns its verdict. Opens,
  /// extends, or closes the saturation / underload / trend incidents.
  DepthVerdict observe_depth(util::SimTime now, double depth_per_replica);

  /// Feeds a thermal-throttle state change for one replica.
  void observe_throttle(util::SimTime now, std::uint32_t replica,
                        bool throttled);

  /// Feeds one query completion (violated = finished past its SLO).
  void observe_completion(util::SimTime now, bool slo_violated);

  /// Feeds a replica crash (down = true) or recovery (down = false).
  /// Returns the id of the kReplicaDown incident opened / closed, or -1
  /// when a recovery arrives with no matching open incident — this is
  /// what crash-triggered scaling events link against.
  std::int64_t observe_crash(util::SimTime now, std::uint32_t replica,
                             bool down);

  /// Feeds an I/O error-burst window edge for one replica; `rate` is
  /// the per-request error probability inside the window.
  void observe_io_burst(util::SimTime now, std::uint32_t replica, bool active,
                        double rate);

  /// Folds `errors` observed transient I/O errors into the replica's
  /// open burst incident (opens one if the window edge was missed).
  void observe_io_errors(util::SimTime now, std::uint32_t replica,
                         std::uint32_t errors);

  /// Feeds a link degradation window edge; `factor` is the remaining
  /// bandwidth fraction (0 = outage).
  void observe_link(util::SimTime now, bool degraded, double factor);

  /// Id of the currently-open incident of `kind` (fleet-scoped kinds
  /// only), or -1 — this is what scaling events link against.
  std::int64_t open_incident(IncidentKind kind) const noexcept;

  const std::vector<Incident>& incidents() const noexcept {
    return incidents_;
  }
  const HealthConfig& config() const noexcept { return config_; }

 private:
  std::size_t open_new(IncidentKind kind, std::string subject,
                       util::SimTime now, double threshold, double value);
  void touch(std::int64_t index, util::SimTime now, double value);
  void close(std::int64_t& index, util::SimTime now);

  HealthConfig config_;
  std::vector<Incident> incidents_;

  // Index of the open incident per fleet-scoped kind, -1 when none.
  std::int64_t open_saturation_ = -1;
  std::int64_t open_underload_ = -1;
  std::int64_t open_trend_ = -1;
  std::int64_t open_slo_ = -1;
  std::int64_t open_link_ = -1;
  std::vector<std::int64_t> open_throttle_;  ///< per replica
  std::vector<std::int64_t> open_down_;      ///< per replica
  std::vector<std::int64_t> open_io_;        ///< per replica

  double prev_depth_ = 0.0;
  bool have_prev_depth_ = false;
  std::uint32_t rising_run_ = 0;

  std::vector<bool> slo_ring_;
  std::size_t slo_pos_ = 0;
  std::uint32_t slo_violations_ = 0;
  bool slo_window_full_ = false;
};

/// Serializes one incident as a JSON object (integer-ps timestamps, so
/// the bytes are exact and runs diff cleanly).
void write_incident_json(std::ostream& os, const Incident& incident);

/// Serializes a full `{"incidents":[...]}` document.
void write_incidents_json(std::ostream& os,
                          const std::vector<Incident>& incidents);

}  // namespace cxlgraph::obs
