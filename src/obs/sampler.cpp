#include "obs/sampler.hpp"

#include <utility>

#include "util/stats.hpp"

namespace cxlgraph::obs {

std::uint32_t TimeSeriesSampler::channel(const std::string& name,
                                         Reduce reduce) {
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(channels_.size());
  channels_.push_back(Channel{name, reduce, {}});
  by_name_.emplace(name, id);
  return id;
}

void TimeSeriesSampler::record(std::uint32_t ch, util::SimTime t,
                               double value) {
  Channel& c = channels_[ch];
  const std::uint64_t index = t / quantum_;
  if (c.buckets.empty() || c.buckets.back().index != index) {
    c.buckets.push_back(Bucket{index, value, value, value, value, 1});
    return;
  }
  Bucket& b = c.buckets.back();
  b.last = value;
  if (value < b.min) b.min = value;
  if (value > b.max) b.max = value;
  b.sum += value;
  ++b.count;
}

bool TimeSeriesSampler::empty() const noexcept {
  for (const Channel& c : channels_) {
    if (!c.buckets.empty()) return false;
  }
  return true;
}

std::vector<WindowSeries::Window> WindowSeries::fold(
    std::size_t windows, double horizon_sec,
    std::uint32_t* out_of_horizon) const {
  std::vector<Window> out;
  if (out_of_horizon != nullptr) *out_of_horizon = 0;
  if (windows == 0 || samples_.empty() || horizon_sec <= 0.0) return out;
  const double span = horizon_sec / static_cast<double>(windows);
  std::vector<std::vector<double>> values(windows);
  std::uint32_t dropped = 0;
  for (const Sample& s : samples_) {
    if (s.t_sec > horizon_sec) {
      // Out of horizon: dropped and counted, never clamped into the last
      // window (that inflated its count and percentiles).
      ++dropped;
      continue;
    }
    auto w = static_cast<std::size_t>(s.t_sec / span);
    if (w >= windows) w = windows - 1;  // the horizon edge lands inside
    values[w].push_back(s.value);
  }
  if (out_of_horizon != nullptr) *out_of_horizon = dropped;
  out.resize(windows);
  for (std::size_t w = 0; w < windows; ++w) {
    Window& win = out[w];
    win.start_sec = span * static_cast<double>(w);
    win.end_sec = span * static_cast<double>(w + 1);
    win.count = static_cast<std::uint32_t>(values[w].size());
    if (!values[w].empty()) {
      win.p50 = util::percentile(values[w], 50.0);
      win.p99 = util::percentile(std::move(values[w]), 99.0);
    }
  }
  return out;
}

}  // namespace cxlgraph::obs
