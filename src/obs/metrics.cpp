#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cxlgraph::obs {

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& component,
                                               const std::string& name,
                                               const std::string& label,
                                               Kind kind) {
  auto key = std::make_tuple(component, name, label);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    auto e = std::make_unique<Entry>();
    e->kind = kind;
    it = entries_.emplace(std::move(key), std::move(e)).first;
  } else if (it->second->kind != kind) {
    throw std::logic_error("MetricsRegistry: metric '" + component + "/" +
                           name + (label.empty() ? "" : "{" + label + "}") +
                           "' registered with conflicting kinds");
  }
  return *it->second;
}

Counter& MetricsRegistry::counter(const std::string& component,
                                  const std::string& name,
                                  const std::string& label) {
  return entry(component, name, label, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& component,
                              const std::string& name,
                              const std::string& label) {
  return entry(component, name, label, Kind::kGauge).gauge;
}

util::Log2Histogram& MetricsRegistry::histogram(const std::string& component,
                                                const std::string& name,
                                                const std::string& label) {
  return entry(component, name, label, Kind::kHistogram).histogram;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << "{\"metrics\":[";
  bool first = true;
  for (const auto& [key, e] : entries_) {
    if (!first) os << ",";
    first = false;
    os << "{\"component\":\"" << json_escape(std::get<0>(key))
       << "\",\"name\":\"" << json_escape(std::get<1>(key)) << "\"";
    if (!std::get<2>(key).empty()) {
      os << ",\"label\":\"" << json_escape(std::get<2>(key)) << "\"";
    }
    switch (e->kind) {
      case Kind::kCounter:
        os << ",\"kind\":\"counter\",\"value\":" << e->counter.value();
        break;
      case Kind::kGauge:
        os << ",\"kind\":\"gauge\",\"value\":" << json_number(e->gauge.value())
           << ",\"max\":" << json_number(e->gauge.max())
           << ",\"updates\":" << e->gauge.updates();
        break;
      case Kind::kHistogram: {
        const auto& h = e->histogram;
        os << ",\"kind\":\"histogram\",\"count\":" << h.count()
           << ",\"p50\":" << json_number(h.quantile(0.50))
           << ",\"p99\":" << json_number(h.quantile(0.99)) << ",\"buckets\":[";
        for (std::size_t i = 0; i < h.buckets().size(); ++i) {
          if (i != 0) os << ",";
          os << h.buckets()[i];
        }
        os << "]";
        break;
      }
    }
    os << "}";
  }
  os << "]}\n";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  // Integers that fit exactly print without an exponent or trailing dot.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace cxlgraph::obs
