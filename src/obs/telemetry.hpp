#pragma once
/// \file telemetry.hpp
/// The one object a run threads through every layer: configuration,
/// metrics registry, span tracer, and time-series sampler behind a
/// single `Telemetry*`.
///
/// The contract, in priority order:
///   1. OFF by default, and the disabled path is one null/flag check at
///      each hook site — no registry lookups, no allocation.
///   2. Observation never perturbs simulation: every hook only *reads*
///      simulator/device state and appends to obs-owned buffers. With
///      telemetry ON, every simulated result is bit-identical to OFF
///      (pinned by telemetry_identity_test and the CI goldens).
///   3. Export is deterministic: same run, same bytes out.
///
/// Components honor the sub-toggles through tracing() / metering() /
/// sampling(), so a trace-only run skips metric updates entirely.

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace cxlgraph::obs {

struct TelemetryConfig {
  bool enabled = false;  ///< master switch; OFF pins the default path
  bool trace = true;     ///< span tracer (--trace-out)
  bool metrics = true;   ///< counters/gauges/histograms (--metrics-out)
  bool sample = true;    ///< windowed time-series channels
  /// Sampling bucket width in simulated time.
  util::SimTime sample_quantum = util::kPsPerUs * 50;
};

class Telemetry {
 public:
  Telemetry() : Telemetry(TelemetryConfig{}) {}
  explicit Telemetry(const TelemetryConfig& cfg)
      : cfg_(cfg), sampler_(cfg.sample_quantum) {}

  /// Convenience: a fully-enabled instance (CLI --trace-out path).
  static TelemetryConfig enabled_config() {
    TelemetryConfig cfg;
    cfg.enabled = true;
    return cfg;
  }

  const TelemetryConfig& config() const noexcept { return cfg_; }
  bool enabled() const noexcept { return cfg_.enabled; }
  bool tracing() const noexcept { return cfg_.enabled && cfg_.trace; }
  bool metering() const noexcept { return cfg_.enabled && cfg_.metrics; }
  bool sampling() const noexcept { return cfg_.enabled && cfg_.sample; }

  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }
  SpanTracer& tracer() noexcept { return tracer_; }
  const SpanTracer& tracer() const noexcept { return tracer_; }
  TimeSeriesSampler& sampler() noexcept { return sampler_; }
  const TimeSeriesSampler& sampler() const noexcept { return sampler_; }

  /// Chrome trace-event JSON: spans + sampler channels as counters.
  void write_trace_json(std::ostream& os) const {
    write_chrome_trace(os, tracer_, &sampler_);
  }
  void write_metrics_json(std::ostream& os) const {
    metrics_.write_json(os);
  }

  /// File variants; false (with no partial file kept open) on I/O error.
  bool save_trace(const std::string& path) const;
  bool save_metrics(const std::string& path) const;

 private:
  TelemetryConfig cfg_;
  MetricsRegistry metrics_;
  SpanTracer tracer_;
  TimeSeriesSampler sampler_;
};

/// Folds a device state model's observable state into trace events:
/// instants on throttle enter/exit plus one complete span per throttle
/// episode, and an instant each time wear crosses a whole unit. Device
/// models own one of these by value; unbound (the default) every hook
/// is a single pointer check — and the hooks only sit on code paths
/// already gated behind the state-model `enabled` flags.
class StateModelTrace {
 public:
  StateModelTrace() = default;

  /// Binds to a telemetry sink, naming this device's trace track.
  void bind(Telemetry* telemetry, const std::string& process,
            const std::string& thread);
  bool bound() const noexcept { return telemetry_ != nullptr; }

  /// Reports the thermal state observed after a charge at `now`.
  void on_thermal(util::SimTime now, bool throttled);
  /// Reports the wear level observed after a write charge at `now`.
  void on_wear(util::SimTime now, double wear_units);

 private:
  Telemetry* telemetry_ = nullptr;
  bool tracing_ = false;
  std::uint16_t track_ = 0;
  std::uint32_t n_enter_ = 0;
  std::uint32_t n_exit_ = 0;
  std::uint32_t n_episode_ = 0;
  std::uint32_t n_wear_ = 0;
  std::uint32_t k_units_ = 0;
  Counter* episodes_ = nullptr;         ///< null when metrics are off
  Counter* wear_milestones_ = nullptr;  ///< null when metrics are off
  bool throttled_ = false;
  util::SimTime since_ = 0;
  std::uint64_t wear_int_ = 0;
};

/// The standard simulator tap: counts dispatched events into a
/// per-component counter and, on each sampling-bucket boundary, reads a
/// set of registered probes (queue depth, link busy, heat, outstanding
/// requests — anything expressible as a `double()` over live state)
/// into sampler channels. Purely passive; attach with
/// `sim.set_observer(&observer)` for the duration of one run and detach
/// (or destroy the observer) before the simulator outlives it.
class SimRunObserver final : public sim::EventObserver {
 public:
  SimRunObserver(Telemetry& telemetry, const std::string& component);

  /// Registers a probe evaluated once per sampling bucket. The channel
  /// name becomes "<component>/<name>".
  void add_probe(const std::string& name, std::function<double()> probe,
                 TimeSeriesSampler::Reduce reduce =
                     TimeSeriesSampler::Reduce::kLast);

  void on_event(util::SimTime now, std::uint16_t listener,
                std::uint16_t opcode) override;

  /// Flushes the in-progress bucket's event count (call once, after the
  /// run drains).
  void finish();

  std::uint64_t events_seen() const noexcept { return events_seen_; }

 private:
  Telemetry& telemetry_;
  std::string component_;
  Counter* event_counter_ = nullptr;  ///< null when metrics are off
  std::uint32_t rate_channel_ = 0;
  bool sampling_ = false;
  util::SimTime quantum_ = 1;
  std::uint64_t bucket_ = 0;
  bool bucket_open_ = false;
  std::uint64_t bucket_events_ = 0;
  std::uint64_t events_seen_ = 0;

  struct Probe {
    std::uint32_t channel;
    std::function<double()> fn;
  };
  std::vector<Probe> probes_;
};

}  // namespace cxlgraph::obs
