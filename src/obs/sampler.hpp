#pragma once
/// \file sampler.hpp
/// Windowed time-series sampling over simulated time.
///
/// Two shapes live here:
///
/// `TimeSeriesSampler` — fixed-quantum channels. A channel is a named
/// series (e.g. "serve/queue_depth"); record(t, v) folds the sample
/// into the bucket t/quantum, keeping last/min/max/sum/count per
/// bucket. Buckets are stored sparsely in recording order, so a probe
/// that fires on every simulator event costs one compare + a few
/// stores, and silent stretches cost nothing. Channels export as
/// Chrome counter tracks ('C' events) next to the span trace.
///
/// `WindowSeries` — equal slices of a known horizon, folded on demand
/// into per-window counts and exact percentiles. This is the
/// bookkeeping `bench_serve_mix --soak` used to hand-roll; the fold
/// reproduces `serve::soak_windows` arithmetic exactly (same bucket
/// rounding, same `util::percentile` rank convention).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace cxlgraph::obs {

class TimeSeriesSampler {
 public:
  /// How a channel's bucket collapses to the one number a counter track
  /// plots: the last sample (gauges: queue depth, heat), the bucket sum
  /// (rates: bytes, events), or the bucket max (high-water marks).
  enum class Reduce { kLast, kSum, kMax };

  explicit TimeSeriesSampler(util::SimTime quantum = util::kPsPerUs * 50)
      : quantum_(quantum == 0 ? 1 : quantum) {}

  util::SimTime quantum() const noexcept { return quantum_; }

  /// Returns the channel id for `name`, creating it on first use.
  std::uint32_t channel(const std::string& name,
                        Reduce reduce = Reduce::kLast);

  void record(std::uint32_t ch, util::SimTime t, double value);

  struct Bucket {
    std::uint64_t index = 0;  ///< bucket start = index * quantum
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    std::uint64_t count = 0;

    double reduced(Reduce r) const noexcept {
      switch (r) {
        case Reduce::kSum: return sum;
        case Reduce::kMax: return max;
        default: return last;
      }
    }
  };

  std::size_t num_channels() const noexcept { return channels_.size(); }
  const std::string& name(std::uint32_t ch) const {
    return channels_[ch].name;
  }
  Reduce reduce(std::uint32_t ch) const { return channels_[ch].reduce; }
  const std::vector<Bucket>& series(std::uint32_t ch) const {
    return channels_[ch].buckets;
  }
  bool empty() const noexcept;

 private:
  struct Channel {
    std::string name;
    Reduce reduce = Reduce::kLast;
    std::vector<Bucket> buckets;
  };

  util::SimTime quantum_;
  std::vector<Channel> channels_;
  std::unordered_map<std::string, std::uint32_t> by_name_;
};

/// Samples tagged with a time in seconds, folded into `n` equal windows
/// of a caller-supplied horizon.
class WindowSeries {
 public:
  void record(double t_sec, double value) {
    samples_.push_back(Sample{t_sec, value});
  }
  std::size_t size() const noexcept { return samples_.size(); }

  struct Window {
    double start_sec = 0.0;
    double end_sec = 0.0;
    std::uint32_t count = 0;
    double p50 = 0.0;
    double p99 = 0.0;
  };

  /// Buckets samples into `windows` equal slices of [0, horizon_sec].
  /// A sample at exactly the horizon lands in the last window (the soak
  /// convention: the final completion defines the horizon); samples
  /// strictly *past* the horizon are dropped — not clamped into the last
  /// window, which would silently inflate its count and percentiles —
  /// and counted into `*out_of_horizon` when non-null. Empty when
  /// `windows` is 0, there are no samples, or the horizon is degenerate.
  std::vector<Window> fold(std::size_t windows, double horizon_sec,
                           std::uint32_t* out_of_horizon = nullptr) const;

 private:
  struct Sample {
    double t_sec;
    double value;
  };
  std::vector<Sample> samples_;
};

}  // namespace cxlgraph::obs
