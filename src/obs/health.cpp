#include "obs/health.hpp"

#include "obs/metrics.hpp"

namespace cxlgraph::obs {

const char* to_string(IncidentKind kind) noexcept {
  switch (kind) {
    case IncidentKind::kSaturation: return "saturation";
    case IncidentKind::kUnderload: return "underload";
    case IncidentKind::kQueueTrend: return "queue-trend";
    case IncidentKind::kThrottle: return "throttle";
    case IncidentKind::kSloViolations: return "slo-violations";
    case IncidentKind::kReplicaDown: return "replica-down";
    case IncidentKind::kIoErrorBurst: return "io-error-burst";
    case IncidentKind::kLinkDegraded: return "link-degraded";
  }
  return "?";
}

const char* to_string(IncidentSeverity severity) noexcept {
  switch (severity) {
    case IncidentSeverity::kInfo: return "info";
    case IncidentSeverity::kWarning: return "warning";
    case IncidentSeverity::kCritical: return "critical";
  }
  return "?";
}

namespace {

IncidentSeverity base_severity(IncidentKind kind) noexcept {
  switch (kind) {
    case IncidentKind::kSaturation: return IncidentSeverity::kWarning;
    case IncidentKind::kUnderload: return IncidentSeverity::kInfo;
    case IncidentKind::kQueueTrend: return IncidentSeverity::kInfo;
    case IncidentKind::kThrottle: return IncidentSeverity::kWarning;
    case IncidentKind::kSloViolations: return IncidentSeverity::kWarning;
    case IncidentKind::kReplicaDown: return IncidentSeverity::kCritical;
    case IncidentKind::kIoErrorBurst: return IncidentSeverity::kWarning;
    case IncidentKind::kLinkDegraded: return IncidentSeverity::kWarning;
  }
  return IncidentSeverity::kInfo;
}

}  // namespace

std::size_t HealthMonitor::open_new(IncidentKind kind, std::string subject,
                                    util::SimTime now, double threshold,
                                    double value) {
  Incident inc;
  inc.id = static_cast<std::uint32_t>(incidents_.size());
  inc.kind = kind;
  inc.severity = base_severity(kind);
  inc.subject = std::move(subject);
  inc.opened_ps = now;
  inc.threshold = threshold;
  inc.peak = value;
  inc.last = value;
  inc.observations = 1;
  incidents_.push_back(std::move(inc));
  return incidents_.size() - 1;
}

void HealthMonitor::touch(std::int64_t index, util::SimTime now,
                          double value) {
  (void)now;
  Incident& inc = incidents_[static_cast<std::size_t>(index)];
  inc.last = value;
  if (value > inc.peak) inc.peak = value;
  ++inc.observations;
  // Severity escalates on evidence: 50% past the threshold upgrades the
  // incident one level (saturation / slo-rate kinds only — the others
  // have no meaningful magnitude).
  if (inc.threshold > 0.0 && inc.peak >= 1.5 * inc.threshold &&
      (inc.kind == IncidentKind::kSaturation ||
       inc.kind == IncidentKind::kSloViolations)) {
    inc.severity = IncidentSeverity::kCritical;
  }
}

void HealthMonitor::close(std::int64_t& index, util::SimTime now) {
  if (index < 0) return;
  Incident& inc = incidents_[static_cast<std::size_t>(index)];
  inc.open = false;
  inc.closed_ps = now;
  index = -1;
}

HealthMonitor::DepthVerdict HealthMonitor::observe_depth(
    util::SimTime now, double depth_per_replica) {
  // The verdict reproduces the elastic controller's original threshold
  // comparisons exactly (strict >, strict <) so consuming it is
  // decision-identical to the private check it replaces.
  DepthVerdict verdict = DepthVerdict::kNominal;
  if (depth_per_replica > config_.depth_high) {
    verdict = DepthVerdict::kOverloaded;
  } else if (depth_per_replica < config_.depth_low) {
    verdict = DepthVerdict::kUnderloaded;
  }

  if (verdict == DepthVerdict::kOverloaded) {
    close(open_underload_, now);
    if (open_saturation_ < 0) {
      open_saturation_ = static_cast<std::int64_t>(
          open_new(IncidentKind::kSaturation, "fleet", now,
                   config_.depth_high, depth_per_replica));
    } else {
      touch(open_saturation_, now, depth_per_replica);
    }
  } else if (verdict == DepthVerdict::kUnderloaded) {
    close(open_saturation_, now);
    if (open_underload_ < 0) {
      open_underload_ = static_cast<std::int64_t>(
          open_new(IncidentKind::kUnderload, "fleet", now, config_.depth_low,
                   depth_per_replica));
    } else {
      touch(open_underload_, now, depth_per_replica);
    }
  } else {
    close(open_saturation_, now);
    close(open_underload_, now);
  }

  // Trend detector: a run of strictly-rising samples flags a ramp
  // before the absolute threshold trips.
  if (have_prev_depth_ && depth_per_replica > prev_depth_) {
    ++rising_run_;
  } else {
    rising_run_ = 0;
  }
  prev_depth_ = depth_per_replica;
  have_prev_depth_ = true;
  if (rising_run_ >= config_.trend_run) {
    if (open_trend_ < 0) {
      open_trend_ = static_cast<std::int64_t>(
          open_new(IncidentKind::kQueueTrend, "fleet", now,
                   static_cast<double>(config_.trend_run), depth_per_replica));
    } else {
      touch(open_trend_, now, depth_per_replica);
    }
  } else {
    close(open_trend_, now);
  }

  return verdict;
}

void HealthMonitor::observe_throttle(util::SimTime now, std::uint32_t replica,
                                     bool throttled) {
  if (open_throttle_.size() <= replica) {
    open_throttle_.resize(replica + 1, -1);
  }
  std::int64_t& slot = open_throttle_[replica];
  if (throttled) {
    if (slot < 0) {
      slot = static_cast<std::int64_t>(
          open_new(IncidentKind::kThrottle,
                   "replica" + std::to_string(replica), now, 0.0, 1.0));
    } else {
      touch(slot, now, 1.0);
    }
  } else {
    close(slot, now);
  }
}

void HealthMonitor::observe_completion(util::SimTime now, bool slo_violated) {
  if (config_.slo_window == 0) return;
  if (slo_ring_.size() != config_.slo_window) {
    slo_ring_.assign(config_.slo_window, false);
    slo_pos_ = 0;
    slo_violations_ = 0;
    slo_window_full_ = false;
  }
  if (slo_ring_[slo_pos_]) --slo_violations_;
  slo_ring_[slo_pos_] = slo_violated;
  if (slo_violated) ++slo_violations_;
  slo_pos_ = (slo_pos_ + 1) % config_.slo_window;
  if (slo_pos_ == 0) slo_window_full_ = true;
  if (!slo_window_full_) return;

  const double rate = static_cast<double>(slo_violations_) /
                      static_cast<double>(config_.slo_window);
  if (rate > config_.slo_rate) {
    if (open_slo_ < 0) {
      open_slo_ = static_cast<std::int64_t>(open_new(
          IncidentKind::kSloViolations, "fleet", now, config_.slo_rate, rate));
    } else {
      touch(open_slo_, now, rate);
    }
  } else {
    close(open_slo_, now);
  }
}

std::int64_t HealthMonitor::observe_crash(util::SimTime now,
                                          std::uint32_t replica, bool down) {
  if (open_down_.size() <= replica) open_down_.resize(replica + 1, -1);
  std::int64_t& slot = open_down_[replica];
  if (down) {
    if (slot < 0) {
      slot = static_cast<std::int64_t>(
          open_new(IncidentKind::kReplicaDown,
                   "replica" + std::to_string(replica), now, 0.0, 1.0));
    } else {
      touch(slot, now, 1.0);
    }
    return incidents_[static_cast<std::size_t>(slot)].id;
  }
  const std::int64_t id =
      slot < 0 ? -1 : incidents_[static_cast<std::size_t>(slot)].id;
  close(slot, now);
  return id;
}

void HealthMonitor::observe_io_burst(util::SimTime now, std::uint32_t replica,
                                     bool active, double rate) {
  if (open_io_.size() <= replica) open_io_.resize(replica + 1, -1);
  std::int64_t& slot = open_io_[replica];
  if (active) {
    if (slot < 0) {
      slot = static_cast<std::int64_t>(
          open_new(IncidentKind::kIoErrorBurst,
                   "replica" + std::to_string(replica), now, rate, 0.0));
    } else {
      touch(slot, now, rate);
    }
  } else {
    close(slot, now);
  }
}

void HealthMonitor::observe_io_errors(util::SimTime now, std::uint32_t replica,
                                      std::uint32_t errors) {
  if (open_io_.size() <= replica) open_io_.resize(replica + 1, -1);
  std::int64_t& slot = open_io_[replica];
  if (slot < 0) {
    slot = static_cast<std::int64_t>(
        open_new(IncidentKind::kIoErrorBurst,
                 "replica" + std::to_string(replica), now, 0.0,
                 static_cast<double>(errors)));
    return;
  }
  touch(slot, now, static_cast<double>(errors));
}

void HealthMonitor::observe_link(util::SimTime now, bool degraded,
                                 double factor) {
  if (degraded) {
    if (open_link_ < 0) {
      open_link_ = static_cast<std::int64_t>(open_new(
          IncidentKind::kLinkDegraded, "fleet", now, factor, factor));
    } else {
      touch(open_link_, now, factor);
    }
  } else {
    close(open_link_, now);
  }
}

std::int64_t HealthMonitor::open_incident(IncidentKind kind) const noexcept {
  std::int64_t index = -1;
  switch (kind) {
    case IncidentKind::kSaturation: index = open_saturation_; break;
    case IncidentKind::kUnderload: index = open_underload_; break;
    case IncidentKind::kQueueTrend: index = open_trend_; break;
    case IncidentKind::kSloViolations: index = open_slo_; break;
    case IncidentKind::kLinkDegraded: index = open_link_; break;
    case IncidentKind::kThrottle: return -1;  // per-replica, not fleet-wide
    case IncidentKind::kReplicaDown: return -1;   // per-replica
    case IncidentKind::kIoErrorBurst: return -1;  // per-replica
  }
  if (index < 0) return -1;
  return incidents_[static_cast<std::size_t>(index)].id;
}

void write_incident_json(std::ostream& os, const Incident& inc) {
  os << "{\"id\":" << inc.id << ",\"kind\":\"" << to_string(inc.kind)
     << "\",\"severity\":\"" << to_string(inc.severity) << "\",\"subject\":\""
     << json_escape(inc.subject) << "\",\"opened_ps\":" << inc.opened_ps
     << ",\"closed_ps\":" << inc.closed_ps
     << ",\"open\":" << (inc.open ? "true" : "false")
     << ",\"threshold\":" << json_number(inc.threshold)
     << ",\"peak\":" << json_number(inc.peak)
     << ",\"last\":" << json_number(inc.last)
     << ",\"observations\":" << inc.observations << "}";
}

void write_incidents_json(std::ostream& os,
                          const std::vector<Incident>& incidents) {
  os << "{\"incidents\":[";
  for (std::size_t i = 0; i < incidents.size(); ++i) {
    if (i != 0) os << ",\n";
    write_incident_json(os, incidents[i]);
  }
  os << "]}\n";
}

}  // namespace cxlgraph::obs
