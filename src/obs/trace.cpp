#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

namespace cxlgraph::obs {

std::uint16_t SpanTracer::track(const std::string& process,
                                const std::string& thread) {
  const std::string key = process + "\x1f" + thread;
  const auto it = track_ids_.find(key);
  if (it != track_ids_.end()) return it->second;

  auto pid_it = pids_.find(process);
  if (pid_it == pids_.end()) {
    pid_it = pids_.emplace(process,
                           static_cast<std::uint32_t>(pids_.size() + 1))
                 .first;
  }
  std::uint32_t tid = 1;
  for (const Track& t : tracks_) {
    if (t.pid == pid_it->second) ++tid;
  }
  const auto id = static_cast<std::uint16_t>(tracks_.size());
  tracks_.push_back(Track{process, thread, pid_it->second, tid});
  track_ids_.emplace(key, id);
  return id;
}

std::uint32_t SpanTracer::intern(const std::string& s) {
  const auto it = intern_.find(s);
  if (it != intern_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(strings_.size());
  strings_.push_back(s);
  intern_.emplace(s, id);
  return id;
}

namespace {

/// Picoseconds to the trace-event microsecond unit, exact to the ps.
void write_us(std::ostream& os, util::SimTime ps) {
  os << ps / util::kPsPerUs;
  const util::SimTime frac = ps % util::kPsPerUs;
  if (frac != 0) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), ".%06llu",
                  static_cast<unsigned long long>(frac));
    // Trim trailing zeros for compactness.
    int end = 6;
    while (end > 0 && buf[end] == '0') --end;
    buf[end + 1] = '\0';
    os << buf;
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const SpanTracer& tracer,
                        const TimeSeriesSampler* sampler) {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Metadata: process and thread names for every track.
  std::uint32_t max_pid = 0;
  {
    std::vector<std::uint32_t> named_pids;
    for (const SpanTracer::Track& t : tracer.tracks()) {
      max_pid = std::max(max_pid, t.pid);
      if (std::find(named_pids.begin(), named_pids.end(), t.pid) ==
          named_pids.end()) {
        named_pids.push_back(t.pid);
        sep();
        os << "{\"ph\":\"M\",\"pid\":" << t.pid
           << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\""
           << json_escape(t.process) << "\"}}";
      }
      sep();
      os << "{\"ph\":\"M\",\"pid\":" << t.pid << ",\"tid\":" << t.tid
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
         << json_escape(t.thread) << "\"}}";
    }
  }
  const std::uint32_t counter_pid = max_pid + 1;
  if (sampler != nullptr && !sampler->empty()) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":" << counter_pid
       << ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
          "\"samples\"}}";
  }

  // Span/instant events in simulated-time order. The sort is stable, so
  // events at equal timestamps keep their emission order — two identical
  // recording sequences serialize byte-identically.
  std::vector<std::uint32_t> order(tracer.events().size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return tracer.events()[a].ts < tracer.events()[b].ts;
                   });
  for (const std::uint32_t idx : order) {
    const TraceEvent& ev = tracer.events()[idx];
    const SpanTracer::Track& t = tracer.tracks()[ev.track];
    sep();
    os << "{\"ph\":\"" << ev.phase << "\",\"pid\":" << t.pid
       << ",\"tid\":" << t.tid << ",\"name\":\""
       << json_escape(tracer.string_at(ev.name)) << "\",\"ts\":";
    write_us(os, ev.ts);
    if (ev.phase == 'X') {
      os << ",\"dur\":";
      write_us(os, ev.dur);
    }
    if (ev.phase == 'i') {
      os << ",\"s\":\"t\"";  // instant scope: thread
    }
    if (ev.phase == 's' || ev.phase == 't' || ev.phase == 'f') {
      // Flow events: the viewer matches arrows on (cat, name, id); the
      // binding-point on the finish attaches the arrow to the enclosing
      // slice rather than the next one.
      os << ",\"cat\":\"" << json_escape(tracer.string_at(ev.name))
         << "\",\"id\":" << ev.arg;
      if (ev.phase == 'f') os << ",\"bp\":\"e\"";
    }
    if (ev.arg_key != kNoArg) {
      os << ",\"args\":{\"" << json_escape(tracer.string_at(ev.arg_key))
         << "\":" << ev.arg << "}";
    }
    os << "}";
  }

  // Sampler channels as counter tracks, one 'C' event per bucket.
  if (sampler != nullptr) {
    for (std::uint32_t ch = 0; ch < sampler->num_channels(); ++ch) {
      const auto reduce = sampler->reduce(ch);
      const std::string& name = sampler->name(ch);
      for (const TimeSeriesSampler::Bucket& b : sampler->series(ch)) {
        sep();
        os << "{\"ph\":\"C\",\"pid\":" << counter_pid << ",\"tid\":0"
           << ",\"name\":\"" << json_escape(name) << "\",\"ts\":";
        write_us(os, b.index * sampler->quantum());
        os << ",\"args\":{\"value\":" << json_number(b.reduced(reduce))
           << "}}";
      }
    }
  }

  os << "]}\n";
}

}  // namespace cxlgraph::obs
