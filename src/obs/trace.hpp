#pragma once
/// \file trace.hpp
/// Simulated-time span tracer emitting Chrome trace-event JSON (the
/// format chrome://tracing and Perfetto load natively).
///
/// The trace model maps simulation structure onto the viewer's
/// process/thread grid: a *track* is one (process, thread) row — e.g.
/// ("runtime", "supersteps") or ("device", "ssd[3]") — and events land
/// on a track as either complete spans (`ph:"X"`, start + duration) or
/// instants (`ph:"i"`). Timestamps are simulated picoseconds recorded
/// verbatim; export divides to microseconds (the trace-event unit) at
/// full precision, so nothing is rounded until serialization.
///
/// Causal flows: flow events (`ph:"s"/"t"/"f"` with a shared id) chain
/// spans on *different* tracks into one arrow-linked sequence — the
/// serving layer uses one flow per admitted query, so Perfetto renders
/// a query's path across replica tracks (admit -> quanta -> migration
/// handoff -> completion). A flow's id is carried in TraceEvent::arg.
///
/// Recording is append-only into flat vectors with interned names:
/// no allocation per event beyond vector growth, no clock reads, no
/// observable effect on the simulation.

#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace cxlgraph::obs {

class TimeSeriesSampler;

inline constexpr std::uint32_t kNoArg = 0xffffffffu;

struct TraceEvent {
  util::SimTime ts = 0;   ///< start (instant: the moment), simulated ps
  util::SimTime dur = 0;  ///< complete spans only
  std::uint64_t arg = 0;  ///< numeric argument (arg_key != kNoArg)
  std::uint32_t name = 0; ///< interned string id
  std::uint32_t arg_key = kNoArg;  ///< interned key for `arg`, or kNoArg
  std::uint16_t track = 0;
  char phase = 'X';  ///< 'X' span, 'i' instant, 's'/'t'/'f' flow start/step/end
};

class SpanTracer {
 public:
  struct Track {
    std::string process;
    std::string thread;
    std::uint32_t pid = 0;  ///< 1-based, one per distinct process name
    std::uint32_t tid = 0;  ///< 1-based within the process
  };

  /// Returns the track id for (process, thread), creating it on first use.
  std::uint16_t track(const std::string& process, const std::string& thread);

  /// Interns a string, returning a stable id.
  std::uint32_t intern(const std::string& s);

  void complete(std::uint16_t track, std::uint32_t name, util::SimTime start,
                util::SimTime dur, std::uint32_t arg_key = kNoArg,
                std::uint64_t arg = 0) {
    events_.push_back(TraceEvent{start, dur, arg, name, arg_key, track, 'X'});
  }
  void instant(std::uint16_t track, std::uint32_t name, util::SimTime at,
               std::uint32_t arg_key = kNoArg, std::uint64_t arg = 0) {
    events_.push_back(TraceEvent{at, 0, arg, name, arg_key, track, 'i'});
  }

  /// Flow events bind spans across tracks into one arrow-linked chain.
  /// All three phases of a flow must share `name` and `id` (the viewer
  /// matches on both); the id rides in TraceEvent::arg.
  void flow_start(std::uint16_t track, std::uint32_t name, util::SimTime at,
                  std::uint64_t id) {
    events_.push_back(TraceEvent{at, 0, id, name, kNoArg, track, 's'});
  }
  void flow_step(std::uint16_t track, std::uint32_t name, util::SimTime at,
                 std::uint64_t id) {
    events_.push_back(TraceEvent{at, 0, id, name, kNoArg, track, 't'});
  }
  void flow_end(std::uint16_t track, std::uint32_t name, util::SimTime at,
                std::uint64_t id) {
    events_.push_back(TraceEvent{at, 0, id, name, kNoArg, track, 'f'});
  }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  const std::vector<Track>& tracks() const noexcept { return tracks_; }
  const std::string& string_at(std::uint32_t id) const {
    return strings_[id];
  }
  bool empty() const noexcept { return events_.empty(); }

 private:
  std::vector<TraceEvent> events_;
  std::vector<Track> tracks_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint32_t> intern_;
  std::unordered_map<std::string, std::uint32_t> pids_;
  std::unordered_map<std::string, std::uint16_t> track_ids_;
};

/// Serializes spans (+ optional sampler channels as counter tracks) as a
/// `{"traceEvents":[...]}` document: metadata names first, then events
/// sorted by simulated time (stable — ties keep emission order).
void write_chrome_trace(std::ostream& os, const SpanTracer& tracer,
                        const TimeSeriesSampler* sampler = nullptr);

}  // namespace cxlgraph::obs
