#include "obs/trace_check.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <stdexcept>

namespace cxlgraph::obs {

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return keyword("true", [] {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = true;
        return v;
      }());
      case 'f': return keyword("false", [] {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        return v;
      }());
      case 'n': return keyword("null", JsonValue{});
      default: return number();
    }
  }

  JsonValue keyword(const char* word, JsonValue result) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) fail("bad literal");
      ++pos_;
    }
    return result;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key.string), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.type = JsonValue::Type::kString;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.string += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': v.string += '"'; break;
        case '\\': v.string += '\\'; break;
        case '/': v.string += '/'; break;
        case 'b': v.string += '\b'; break;
        case 'f': v.string += '\f'; break;
        case 'n': v.string += '\n'; break;
        case 'r': v.string += '\r'; break;
        case 't': v.string += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogates pass through as
          // replacement-free bytes; the tracer never emits them).
          if (code < 0x80) {
            v.string += static_cast<char>(code);
          } else if (code < 0x800) {
            v.string += static_cast<char>(0xC0 | (code >> 6));
            v.string += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            v.string += static_cast<char>(0xE0 | (code >> 12));
            v.string += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            v.string += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool is_string(const JsonValue* v) {
  return v != nullptr && v->type == JsonValue::Type::kString;
}
bool is_number(const JsonValue* v) {
  return v != nullptr && v->type == JsonValue::Type::kNumber;
}

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

JsonValue parse_json(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_json(buf.str());
}

TraceCheckResult check_trace(const JsonValue& doc) {
  TraceCheckResult result;
  const auto fail = [&result](std::size_t i, const std::string& what) {
    result.error = "traceEvents[" + std::to_string(i) + "]: " + what;
    return result;
  };

  if (doc.type != JsonValue::Type::kObject) {
    result.error = "root is not an object";
    return result;
  }
  const JsonValue* events = doc.find("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    result.error = "missing traceEvents array";
    return result;
  }

  // Flow chains are validated against document order, which for our
  // writer is simulated-time order (stable for ties): one 's' first,
  // then steps, then exactly one 'f', timestamps never decreasing.
  struct FlowState {
    std::size_t start_index = 0;
    double last_ts = 0.0;
    bool finished = false;
  };
  std::map<std::string, FlowState> flows;

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    if (ev.type != JsonValue::Type::kObject) return fail(i, "not an object");
    const JsonValue* ph = ev.find("ph");
    if (!is_string(ph) || ph->string.size() != 1) {
      return fail(i, "missing one-character ph");
    }
    if (!is_string(ev.find("name"))) return fail(i, "missing name");
    if (!is_number(ev.find("pid")) || !is_number(ev.find("tid"))) {
      return fail(i, "missing pid/tid");
    }
    const char phase = ph->string[0];
    switch (phase) {
      case 'M': {
        const JsonValue* args = ev.find("args");
        if (args == nullptr || !is_string(args->find("name"))) {
          return fail(i, "metadata without args.name");
        }
        const std::string& meta = ev.find("name")->string;
        if (meta != "process_name" && meta != "thread_name") {
          return fail(i, "unknown metadata record '" + meta + "'");
        }
        ++result.metadata;
        break;
      }
      case 'X': {
        const JsonValue* ts = ev.find("ts");
        const JsonValue* dur = ev.find("dur");
        if (!is_number(ts) || ts->number < 0.0) return fail(i, "bad ts");
        if (!is_number(dur) || dur->number < 0.0) return fail(i, "bad dur");
        ++result.spans;
        break;
      }
      case 'i':
      case 'I': {
        const JsonValue* ts = ev.find("ts");
        if (!is_number(ts) || ts->number < 0.0) return fail(i, "bad ts");
        ++result.instants;
        break;
      }
      case 'C': {
        const JsonValue* ts = ev.find("ts");
        if (!is_number(ts) || ts->number < 0.0) return fail(i, "bad ts");
        if (ev.find("args") == nullptr) return fail(i, "counter without args");
        ++result.counters;
        break;
      }
      case 's':
      case 't':
      case 'f': {
        const JsonValue* ts = ev.find("ts");
        if (!is_number(ts) || ts->number < 0.0) return fail(i, "bad ts");
        const JsonValue* id = ev.find("id");
        std::string key;
        if (is_number(id)) {
          const auto integral = static_cast<long long>(id->number);
          if (static_cast<double>(integral) == id->number) {
            key = std::to_string(integral);
          } else {
            std::ostringstream num;
            num << id->number;
            key = num.str();
          }
        } else if (is_string(id)) {
          key = id->string;
        } else {
          return fail(i, "flow event without id");
        }
        if (phase == 's') {
          const auto [it, inserted] =
              flows.emplace(key, FlowState{i, ts->number, false});
          if (!inserted) {
            return fail(i, "duplicate flow start for id " + key);
          }
        } else {
          const auto it = flows.find(key);
          if (it == flows.end()) {
            return fail(i, std::string(phase == 'f' ? "flow finish"
                                                    : "flow step") +
                               " for id " + key + " with no start");
          }
          FlowState& state = it->second;
          if (state.finished) {
            return fail(i, "flow event for id " + key + " after its finish");
          }
          if (ts->number < state.last_ts) {
            return fail(i, "flow id " + key + " timestamps decrease");
          }
          state.last_ts = ts->number;
          if (phase == 'f') state.finished = true;
        }
        ++result.flow_events;
        break;
      }
      default:
        return fail(i, std::string("unsupported phase '") + phase + "'");
    }
  }
  for (const auto& [key, state] : flows) {
    if (!state.finished) {
      return fail(state.start_index, "flow id " + key + " never finishes");
    }
  }
  result.flows = flows.size();
  result.events = events->array.size();
  result.ok = true;
  return result;
}

std::vector<TrackSummary> summarize_trace(const JsonValue& doc) {
  const TraceCheckResult check = check_trace(doc);
  if (!check.ok) {
    throw std::runtime_error("invalid trace: " + check.error);
  }
  const JsonValue& events = *doc.find("traceEvents");

  // Resolve pid/tid to names from metadata records first.
  std::map<double, std::string> process_names;
  std::map<std::pair<double, double>, std::string> thread_names;
  for (const JsonValue& ev : events.array) {
    if (ev.find("ph")->string != "M") continue;
    const std::string& meta = ev.find("name")->string;
    const double pid = ev.find("pid")->number;
    const std::string& name = ev.find("args")->find("name")->string;
    if (meta == "process_name") {
      process_names[pid] = name;
    } else {
      thread_names[{pid, ev.find("tid")->number}] = name;
    }
  }

  std::map<std::pair<std::string, std::string>, TrackSummary> tracks;
  for (const JsonValue& ev : events.array) {
    const char phase = ev.find("ph")->string[0];
    if (phase != 'X' && phase != 'i' && phase != 'I' && phase != 's' &&
        phase != 't' && phase != 'f') {
      continue;
    }
    const double pid = ev.find("pid")->number;
    const double tid = ev.find("tid")->number;
    const auto pit = process_names.find(pid);
    std::string process = pit != process_names.end()
                              ? pit->second
                              : "pid " + std::to_string(pid);
    const auto tit = thread_names.find({pid, tid});
    std::string thread =
        tit != thread_names.end() ? tit->second : "tid " + std::to_string(tid);

    auto [it, inserted] =
        tracks.try_emplace({std::move(process), std::move(thread)});
    TrackSummary& t = it->second;
    if (inserted) {
      t.process = it->first.first;
      t.thread = it->first.second;
      t.first_us = ev.find("ts")->number;
    }
    const double ts = ev.find("ts")->number;
    t.first_us = std::min(t.first_us, ts);
    if (phase == 'X') {
      const double dur = ev.find("dur")->number;
      ++t.spans;
      t.busy_us += dur;
      t.last_us = std::max(t.last_us, ts + dur);
    } else if (phase == 'i' || phase == 'I') {
      ++t.instants;
      t.last_us = std::max(t.last_us, ts);
    } else {
      ++t.flow_events;
      t.last_us = std::max(t.last_us, ts);
    }
  }

  std::vector<TrackSummary> out;
  out.reserve(tracks.size());
  for (auto& [key, t] : tracks) out.push_back(std::move(t));
  return out;
}

}  // namespace cxlgraph::obs
