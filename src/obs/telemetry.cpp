#include "obs/telemetry.hpp"

#include <fstream>

namespace cxlgraph::obs {

bool Telemetry::save_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_trace_json(out);
  return static_cast<bool>(out);
}

bool Telemetry::save_metrics(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_json(out);
  return static_cast<bool>(out);
}

void StateModelTrace::bind(Telemetry* telemetry, const std::string& process,
                           const std::string& thread) {
  telemetry_ = telemetry;
  if (telemetry_ == nullptr || !telemetry_->enabled()) {
    telemetry_ = nullptr;
    return;
  }
  tracing_ = telemetry_->tracing();
  if (tracing_) {
    SpanTracer& tracer = telemetry_->tracer();
    track_ = tracer.track(process, thread);
    n_enter_ = tracer.intern("throttle-enter");
    n_exit_ = tracer.intern("throttle-exit");
    n_episode_ = tracer.intern("throttled");
    n_wear_ = tracer.intern("wear-milestone");
    k_units_ = tracer.intern("units");
  }
  if (telemetry_->metering()) {
    episodes_ =
        &telemetry_->metrics().counter(process, thread + "/throttle_episodes");
    wear_milestones_ =
        &telemetry_->metrics().counter(process, thread + "/wear_milestones");
  }
}

void StateModelTrace::on_thermal(util::SimTime now, bool throttled) {
  if (throttled == throttled_) return;
  throttled_ = throttled;
  if (throttled) {
    since_ = now;
    if (tracing_) telemetry_->tracer().instant(track_, n_enter_, now);
    return;
  }
  if (tracing_) {
    telemetry_->tracer().instant(track_, n_exit_, now);
    telemetry_->tracer().complete(track_, n_episode_, since_, now - since_);
  }
  if (episodes_ != nullptr) episodes_->add();
}

void StateModelTrace::on_wear(util::SimTime now, double wear_units) {
  const auto level = static_cast<std::uint64_t>(wear_units);
  if (level <= wear_int_) return;
  wear_int_ = level;
  if (tracing_) {
    telemetry_->tracer().instant(track_, n_wear_, now, k_units_, level);
  }
  if (wear_milestones_ != nullptr) wear_milestones_->add();
}

SimRunObserver::SimRunObserver(Telemetry& telemetry,
                               const std::string& component)
    : telemetry_(telemetry), component_(component) {
  if (telemetry_.metering()) {
    event_counter_ = &telemetry_.metrics().counter(component_, "events");
  }
  sampling_ = telemetry_.sampling();
  if (sampling_) {
    quantum_ = telemetry_.sampler().quantum();
    rate_channel_ = telemetry_.sampler().channel(
        component_ + "/events_per_quantum", TimeSeriesSampler::Reduce::kSum);
  }
}

void SimRunObserver::add_probe(const std::string& name,
                               std::function<double()> probe,
                               TimeSeriesSampler::Reduce reduce) {
  if (!sampling_) return;
  const std::uint32_t ch =
      telemetry_.sampler().channel(component_ + "/" + name, reduce);
  probes_.push_back(Probe{ch, std::move(probe)});
}

void SimRunObserver::on_event(util::SimTime now, std::uint16_t /*listener*/,
                              std::uint16_t /*opcode*/) {
  ++events_seen_;
  if (event_counter_ != nullptr) event_counter_->add();
  if (!sampling_) return;

  const std::uint64_t bucket = now / quantum_;
  if (bucket_open_ && bucket == bucket_) {
    ++bucket_events_;
    return;
  }
  // Bucket boundary: close out the previous bucket's event count, then
  // read every probe once at the boundary event's timestamp.
  if (bucket_open_) {
    telemetry_.sampler().record(rate_channel_, bucket_ * quantum_,
                                static_cast<double>(bucket_events_));
  }
  bucket_ = bucket;
  bucket_open_ = true;
  bucket_events_ = 1;
  for (const Probe& p : probes_) {
    telemetry_.sampler().record(p.channel, now, p.fn());
  }
}

void SimRunObserver::finish() {
  if (bucket_open_ && bucket_events_ > 0) {
    telemetry_.sampler().record(rate_channel_, bucket_ * quantum_,
                                static_cast<double>(bucket_events_));
  }
  bucket_open_ = false;
  bucket_events_ = 0;
}

}  // namespace cxlgraph::obs
