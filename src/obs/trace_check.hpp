#pragma once
/// \file trace_check.hpp
/// Self-contained trace-event JSON validation and summarization: a
/// minimal recursive-descent JSON reader (no dependency beyond the
/// standard library), a schema checker for the subset of the Chrome
/// trace-event format our writer emits, and a per-track utilization
/// fold. Lives in the library (not the tool) so tests exercise the
/// exact code `tools/trace_summary` ships.

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

namespace cxlgraph::obs {

/// A parsed JSON value. Numbers are doubles (trace-event ts/dur fit
/// comfortably); object members keep document order.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const;
};

/// Parses one JSON document; throws std::runtime_error with a byte
/// offset on malformed input.
JsonValue parse_json(std::istream& in);
JsonValue parse_json(const std::string& text);

struct TraceCheckResult {
  bool ok = false;
  std::string error;  ///< first violation, empty when ok
  std::size_t events = 0;
  std::size_t spans = 0;
  std::size_t instants = 0;
  std::size_t counters = 0;
  std::size_t metadata = 0;
  std::size_t flow_events = 0;  ///< total 's'/'t'/'f' events
  std::size_t flows = 0;        ///< distinct flow ids (one per 's')
};

/// Validates a `{"traceEvents": [...]}` document against the schema the
/// tracer emits: every event an object with string `ph`/`name` and
/// numeric `pid`/`tid`; non-metadata events carry `ts` >= 0; complete
/// spans carry `dur` >= 0; metadata events name a process or thread.
/// Flow events ('s'/'t'/'f') carry an `id` and are checked as chains:
/// every flow opens with exactly one 's' (ids unique), steps and the
/// single 'f' follow it with non-decreasing timestamps in document
/// order, and no flow is left unfinished.
TraceCheckResult check_trace(const JsonValue& doc);

struct TrackSummary {
  std::string process;
  std::string thread;
  std::uint64_t spans = 0;
  std::uint64_t instants = 0;
  std::uint64_t flow_events = 0;  ///< flow start/step/end events on the track
  double busy_us = 0.0;   ///< sum of span durations
  double first_us = 0.0;  ///< earliest event timestamp on the track
  double last_us = 0.0;   ///< latest span end / instant timestamp

  /// busy time over the track's own [first, last] window.
  double utilization() const noexcept {
    const double window = last_us - first_us;
    return window > 0.0 ? busy_us / window : 0.0;
  }
};

/// Folds a validated trace into per-(process, thread) utilization rows,
/// sorted by (process, thread). Counter/metadata events are skipped.
std::vector<TrackSummary> summarize_trace(const JsonValue& doc);

}  // namespace cxlgraph::obs
