#include "core/runtime.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "access/method.hpp"
#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/dobfs.hpp"
#include "algo/sssp.hpp"
#include "algo/sssp_delta.hpp"
#include "device/storage.hpp"
#include "device/tiered.hpp"
#include "gpusim/pointer_chase.hpp"
#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"

namespace cxlgraph::core {

namespace {

/// Everything a single simulated run needs, with correct teardown order.
struct RunStack {
  sim::Simulator sim;
  std::unique_ptr<device::PcieLink> link;
  std::unique_ptr<device::MemoryDevice> memory_device;
  /// Second device for composites (tiered fast tier); must outlive
  /// memory_device, which may reference it.
  std::unique_ptr<device::MemoryDevice> fast_tier;
  std::unique_ptr<device::MemoryDevice> slow_tier;
  std::unique_ptr<device::StorageArray> storage_array;
  std::unique_ptr<access::AccessMethod> method;
  std::unique_ptr<access::MemoryBackend> backend;
};

std::uint64_t scaled_capacity(double fraction, std::uint64_t base,
                              std::uint64_t floor_bytes) {
  const auto scaled = static_cast<std::uint64_t>(
      fraction * static_cast<double>(base));
  return std::max(scaled, floor_bytes);
}

/// Builds link + device + access method for the requested backend.
RunStack build_stack(const SystemConfig& cfg, const RunRequest& req,
                     std::uint64_t edge_list_bytes) {
  RunStack s;
  device::PcieLinkParams link_params = device::pcie_x16(cfg.gpu_link_gen);
  if (req.backend == BackendKind::kCxl && cfg.gpu_direct_cxl) {
    // Direct GPU<->CXL path: no CPU translation in either direction.
    link_params.request_overhead -=
        std::min(link_params.request_overhead, cfg.direct_cxl_saving);
    link_params.response_overhead -=
        std::min(link_params.response_overhead, cfg.direct_cxl_saving);
  }
  s.link = std::make_unique<device::PcieLink>(s.sim, link_params);

  switch (req.backend) {
    case BackendKind::kHostDram:
    case BackendKind::kHostDramRemote: {
      const auto& dram_params = req.backend == BackendKind::kHostDram
                                    ? cfg.dram_local
                                    : cfg.dram_remote;
      s.memory_device = std::make_unique<device::HostDram>(
          s.sim, dram_params, to_string(req.backend));
      access::EmogiParams ep = cfg.emogi;
      if (req.alignment) ep.alignment = *req.alignment;
      ep.gpu_cache_bytes = scaled_capacity(
          cfg.emogi_cache_fraction, edge_list_bytes, cfg.emogi_cache_min_bytes);
      s.method = std::make_unique<access::EmogiAccess>(ep);
      s.backend = std::make_unique<access::MemoryPathBackend>(
          *s.link, *s.memory_device);
      break;
    }
    case BackendKind::kCxl: {
      device::CxlDeviceParams cp = cfg.cxl;
      if (req.cxl_added_latency) cp.added_latency = *req.cxl_added_latency;
      s.memory_device = std::make_unique<device::CxlMemoryPool>(
          s.sim, cp, cfg.cxl_devices, cfg.cxl_interleave_bytes);
      access::EmogiParams ep = cfg.emogi;
      if (req.alignment) ep.alignment = *req.alignment;
      ep.gpu_cache_bytes = scaled_capacity(
          cfg.emogi_cache_fraction, edge_list_bytes, cfg.emogi_cache_min_bytes);
      s.method = std::make_unique<access::EmogiAccess>(ep);
      s.backend = std::make_unique<access::MemoryPathBackend>(
          *s.link, *s.memory_device);
      break;
    }
    case BackendKind::kXlfdd: {
      device::StorageDriveParams sp = device::xlfdd_drive_params();
      sp.thermal = cfg.storage_thermal;
      sp.endurance = cfg.storage_endurance;
      sp.qd_curve = cfg.storage_qd_curve;
      s.storage_array = std::make_unique<device::StorageArray>(
          s.sim, *s.link, sp, cfg.xlfdd_drives, device::kXlfddStripeBytes);
      access::XlfddDirectParams xp = cfg.xlfdd;
      if (req.alignment) xp.alignment = *req.alignment;
      s.method = std::make_unique<access::XlfddDirectAccess>(xp);
      s.backend = std::make_unique<access::StoragePathBackend>(
          *s.storage_array, "storage:xlfdd-x" +
                                std::to_string(cfg.xlfdd_drives));
      break;
    }
    case BackendKind::kBamNvme: {
      device::StorageDriveParams sp = device::nvme_drive_params();
      sp.thermal = cfg.storage_thermal;
      sp.endurance = cfg.storage_endurance;
      sp.qd_curve = cfg.storage_qd_curve;
      s.storage_array = std::make_unique<device::StorageArray>(
          s.sim, *s.link, sp, cfg.nvme_drives, device::kNvmeStripeBytes);
      access::BamParams bp = cfg.bam;
      if (req.alignment) bp.line_bytes = *req.alignment;
      bp.cache_bytes =
          req.cache_bytes.value_or(scaled_capacity(
              cfg.bam_cache_fraction, edge_list_bytes, 1ull << 20));
      if (bp.line_bytes < s.storage_array->drive_params().min_alignment ||
          bp.line_bytes > s.storage_array->drive_params().max_transfer) {
        throw std::invalid_argument(
            "BaM line size outside NVMe transfer limits");
      }
      s.method = std::make_unique<access::BamAccess>(bp);
      s.backend = std::make_unique<access::StoragePathBackend>(
          *s.storage_array,
          "storage:nvme-x" + std::to_string(cfg.nvme_drives));
      break;
    }
    case BackendKind::kTieredDramCxl: {
      device::CxlDeviceParams cp = cfg.cxl;
      if (req.cxl_added_latency) cp.added_latency = *req.cxl_added_latency;
      s.fast_tier = std::make_unique<device::HostDram>(
          s.sim, cfg.dram_local, "dram-hot-tier");
      s.slow_tier = std::make_unique<device::CxlMemoryPool>(
          s.sim, cp, cfg.cxl_devices, cfg.cxl_interleave_bytes);
      device::TieredMemoryParams tp;
      tp.placement = device::TierPlacement::kRangeSplit;
      tp.fast_bytes = req.cache_bytes.value_or(static_cast<std::uint64_t>(
          cfg.tier_fast_fraction * static_cast<double>(edge_list_bytes)));
      tp.fast_bytes = tp.fast_bytes / 4096 * 4096;  // page-rounded split
      s.memory_device = std::make_unique<device::TieredMemory>(
          *s.fast_tier, *s.slow_tier, tp);
      access::EmogiParams ep = cfg.emogi;
      if (req.alignment) ep.alignment = *req.alignment;
      ep.gpu_cache_bytes = scaled_capacity(
          cfg.emogi_cache_fraction, edge_list_bytes, cfg.emogi_cache_min_bytes);
      s.method = std::make_unique<access::EmogiAccess>(ep);
      s.backend = std::make_unique<access::MemoryPathBackend>(
          *s.link, *s.memory_device);
      break;
    }
    case BackendKind::kUvm: {
      s.storage_array = std::make_unique<device::StorageArray>(
          s.sim, *s.link, access::uvm_fault_engine_params(), 1, 4096);
      access::UvmParams up = cfg.uvm;
      up.resident_bytes = req.cache_bytes.value_or(scaled_capacity(
          cfg.uvm_resident_fraction, edge_list_bytes, 1ull << 20));
      s.method = std::make_unique<access::UvmAccess>(up);
      s.backend = std::make_unique<access::StoragePathBackend>(
          *s.storage_array, "storage:uvm-fault-path");
      break;
    }
  }
  return s;
}

/// Attaches the passive observation set for one run_trace: a simulator
/// tap with link-busy (per direction), outstanding-reads, and device
/// heat probes, plus the device state-model transition taps. Everything
/// reads; nothing schedules.
std::unique_ptr<obs::SimRunObserver> attach_run_observer(
    obs::Telemetry& telemetry, RunStack& stack) {
  auto observer = std::make_unique<obs::SimRunObserver>(telemetry, "sim");
  device::PcieLink* const link = stack.link.get();
  observer->add_probe(
      "link_return_busy_us",
      [link, prev = util::SimTime{0}]() mutable {
        const util::SimTime busy = link->stats().return_busy_time;
        const double delta = util::us_from_ps(busy - prev);
        prev = busy;
        return delta;
      });
  observer->add_probe(
      "link_upstream_busy_us",
      [link, prev = util::SimTime{0}]() mutable {
        const util::SimTime busy = link->stats().upstream_busy_time;
        const double delta = util::us_from_ps(busy - prev);
        prev = busy;
        return delta;
      });
  observer->add_probe(
      "outstanding_reads",
      [link] { return static_cast<double>(link->tags_in_use()); },
      obs::TimeSeriesSampler::Reduce::kMax);

  auto* pool =
      dynamic_cast<device::CxlMemoryPool*>(stack.memory_device.get());
  if (pool == nullptr) {
    pool = dynamic_cast<device::CxlMemoryPool*>(stack.slow_tier.get());
  }
  if (pool != nullptr) {
    pool->set_telemetry(&telemetry);
    observer->add_probe(
        "heat",
        [pool] {
          double h = 0.0;
          for (unsigned i = 0; i < pool->num_devices(); ++i) {
            h = std::max(h, pool->device(i).heat());
          }
          return h;
        },
        obs::TimeSeriesSampler::Reduce::kMax);
  }
  if (stack.storage_array != nullptr) {
    stack.storage_array->set_telemetry(&telemetry);
    observer->add_probe(
        "heat",
        [array = stack.storage_array.get()] {
          double h = 0.0;
          for (unsigned i = 0; i < array->num_drives(); ++i) {
            h = std::max(h, array->drive(i).heat());
          }
          return h;
        },
        obs::TimeSeriesSampler::Reduce::kMax);
  }
  stack.sim.set_observer(observer.get());
  return observer;
}

/// Post-run emission: per-superstep spans along the replay timeline
/// (step_durations sums exactly to the engine's total, so cumulative
/// starts are exact) plus the run-level metric aggregates.
void record_run_telemetry(obs::Telemetry& telemetry,
                          const TraceRunResult& result) {
  if (telemetry.tracing()) {
    obs::SpanTracer& tracer = telemetry.tracer();
    const std::uint16_t track =
        tracer.track("runtime", result.report.access_method);
    const std::uint32_t name = tracer.intern("superstep");
    const std::uint32_t key = tracer.intern("bytes");
    util::SimTime at = 0;
    for (std::size_t i = 0; i < result.step_durations.size(); ++i) {
      tracer.complete(track, name, at, result.step_durations[i], key,
                      result.step_fetched_bytes[i]);
      at += result.step_durations[i];
    }
  }
  if (telemetry.metering()) {
    obs::MetricsRegistry& metrics = telemetry.metrics();
    metrics.counter("runtime", "supersteps")
        .add(result.step_durations.size());
    metrics.counter("runtime", "fetched_bytes")
        .add(result.report.fetched_bytes);
    metrics.counter("runtime", "transactions")
        .add(result.report.transactions);
    util::Log2Histogram& steps = metrics.histogram("runtime", "step_ns");
    for (const util::SimTime d : result.step_durations) {
      steps.add(d / util::kPsPerNs);
    }
  }
}

}  // namespace

ExternalGraphRuntime::ExternalGraphRuntime(SystemConfig config)
    : config_(std::move(config)) {}

algo::AccessTrace ExternalGraphRuntime::make_trace(
    const graph::CsrGraph& graph, Algorithm algorithm,
    graph::VertexId source) const {
  switch (algorithm) {
    case Algorithm::kBfs:
      return algo::build_trace(graph, algo::bfs(graph, source).frontiers);
    case Algorithm::kSssp:
      return algo::build_trace(graph,
                               algo::sssp_frontier(graph, source).frontiers);
    case Algorithm::kCc:
      return algo::build_trace(graph,
                               algo::connected_components(graph).frontiers);
    case Algorithm::kPagerankScan:
      return algo::build_sequential_trace(graph, 1);
    case Algorithm::kBfsDirOpt:
      return algo::build_dobfs_trace(
          graph, algo::bfs_direction_optimizing(graph, source));
    case Algorithm::kSsspDelta:
      return algo::build_trace(
          graph, algo::sssp_delta_stepping(graph, source).phases);
    case Algorithm::kBfsWriteback:
      return algo::build_writeback_trace(
          graph, algo::bfs(graph, source).frontiers);
  }
  throw std::invalid_argument("unknown algorithm");
}

RunReport ExternalGraphRuntime::run(const graph::CsrGraph& graph,
                                    const RunRequest& request) {
  return run_profiled(graph, request).report;
}

TraceRunResult ExternalGraphRuntime::run_profiled(
    const graph::CsrGraph& graph, const RunRequest& request) {
  const graph::VertexId source = request.source.value_or(
      algo::pick_source(graph, request.source_seed));
  const algo::AccessTrace trace =
      make_trace(graph, request.algorithm, source);

  TraceRunResult result =
      run_trace(trace, request, graph.edge_list_bytes());
  result.report.source = source;
  result.report.graph_edges = graph.num_edges();
  return result;
}

TraceRunResult ExternalGraphRuntime::run_trace(
    const algo::AccessTrace& trace, const RunRequest& request,
    std::uint64_t edge_list_bytes) const {
  RunStack stack = build_stack(config_, request, edge_list_bytes);
  gpusim::TraversalEngine engine(stack.sim, *stack.method, *stack.backend,
                                 config_.gpu);
  std::unique_ptr<obs::SimRunObserver> observer;
  if (telemetry_ != nullptr && telemetry_->enabled()) {
    observer = attach_run_observer(*telemetry_, stack);
  }
  const gpusim::EngineResult engine_result = engine.run(trace);
  if (observer != nullptr) {
    observer->finish();
    stack.sim.set_observer(nullptr);
  }

  TraceRunResult result;
  RunReport& report = result.report;
  report.algorithm = to_string(request.algorithm);
  report.backend = to_string(request.backend);
  report.access_method = stack.method->name();
  report.runtime_sec = engine_result.runtime_sec();
  report.throughput_mbps = engine_result.throughput_mbps();
  report.raf = engine_result.raf();
  report.avg_transfer_bytes = engine_result.avg_transaction_bytes();
  report.used_bytes = engine_result.used_bytes;
  report.fetched_bytes = engine_result.fetched_bytes;
  report.transactions = engine_result.transactions;
  report.steps = engine_result.steps.size();
  report.observed_read_latency_us =
      stack.link->stats().memory_read_latency_us.mean();
  report.avg_outstanding_reads = stack.link->stats().tags_in_use.mean();
  report.link_return_busy_sec =
      util::sec_from_ps(stack.link->stats().return_busy_time);
  report.link_upstream_busy_sec =
      util::sec_from_ps(stack.link->stats().upstream_busy_time);
  report.written_bytes = engine_result.written_bytes;
  report.write_transactions = engine_result.write_transactions;
  report.rmw_reads = engine_result.rmw_reads;
  report.frontier_vertices = engine_result.sublist_reads;
  result.step_durations.reserve(engine_result.steps.size());
  result.step_fetched_bytes.reserve(engine_result.steps.size());
  for (const gpusim::StepResult& step : engine_result.steps) {
    result.step_durations.push_back(step.duration);
    result.step_fetched_bytes.push_back(step.fetched_bytes);
  }
  if (telemetry_ != nullptr && telemetry_->enabled()) {
    record_run_telemetry(*telemetry_, result);
  }
  return result;
}

double ExternalGraphRuntime::measure_latency_us(
    BackendKind backend,
    std::optional<util::SimTime> cxl_added_latency) const {
  return measure_latency(backend, cxl_added_latency).mean_us;
}

gpusim::PointerChaseResult ExternalGraphRuntime::measure_latency(
    BackendKind backend,
    std::optional<util::SimTime> cxl_added_latency) const {
  sim::Simulator sim;
  device::PcieLink link(sim, device::pcie_x16(config_.gpu_link_gen));
  std::unique_ptr<device::MemoryDevice> dev;
  switch (backend) {
    case BackendKind::kHostDram:
      dev = std::make_unique<device::HostDram>(sim, config_.dram_local,
                                               "host-dram");
      break;
    case BackendKind::kHostDramRemote:
      dev = std::make_unique<device::HostDram>(sim, config_.dram_remote,
                                               "host-dram-remote");
      break;
    case BackendKind::kCxl: {
      device::CxlDeviceParams cp = config_.cxl;
      if (cxl_added_latency) cp.added_latency = *cxl_added_latency;
      dev = std::make_unique<device::CxlMemoryPool>(
          sim, cp, config_.cxl_devices, config_.cxl_interleave_bytes);
      break;
    }
    default:
      throw std::invalid_argument(
          "pointer chase requires a memory-path backend");
  }
  return gpusim::pointer_chase(sim, link, *dev);
}

}  // namespace cxlgraph::core
