#include "core/experiment_runner.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>
#include <thread>

namespace cxlgraph::core {

ExperimentRunner::ExperimentRunner(SystemConfig config, unsigned jobs)
    : config_(std::move(config)), jobs_(jobs) {}

unsigned ExperimentRunner::workers() const noexcept {
  if (jobs_ == 1) return 1;
  if (pool_) return pool_->size();
  return jobs_ == 0 ? std::max(1u, std::thread::hardware_concurrency())
                    : jobs_;
}

util::ThreadPool& ExperimentRunner::ensure_pool() {
  if (!pool_) pool_ = std::make_unique<util::ThreadPool>(jobs_);
  return *pool_;
}

std::vector<RunReport> ExperimentRunner::run_all(
    const std::vector<SweepJob>& jobs) {
  for (const SweepJob& job : jobs) {
    if (job.graph == nullptr) {
      throw std::invalid_argument("SweepJob with null graph");
    }
  }

  std::vector<RunReport> reports(jobs.size());
  if (jobs_ == 1 || jobs.size() <= 1) {
    ExternalGraphRuntime rt(config_);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (jobs[i].config) {
        ExternalGraphRuntime custom(*jobs[i].config);
        reports[i] = custom.run(*jobs[i].graph, jobs[i].request);
      } else {
        reports[i] = rt.run(*jobs[i].graph, jobs[i].request);
      }
    }
    return reports;
  }

  ensure_pool();

  // Each task builds its own runtime (a config copy) and writes its report
  // into a pre-sized slot, so results land in insertion order no matter
  // which worker finishes first.
  std::vector<std::future<void>> futures;
  futures.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    futures.push_back(pool_->submit([this, &jobs, &reports, i] {
      const SweepJob& job = jobs[i];
      ExternalGraphRuntime rt(job.config ? *job.config : config_);
      reports[i] = rt.run(*job.graph, job.request);
    }));
  }

  // Drain every future before rethrowing so no task still references the
  // local vectors when an exception unwinds them.
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return reports;
}

std::vector<TraceRunResult> ExperimentRunner::run_traces(
    const std::vector<TraceJob>& jobs) {
  for (const TraceJob& job : jobs) {
    if (job.trace == nullptr) {
      throw std::invalid_argument("TraceJob with null trace");
    }
  }
  std::vector<std::function<TraceRunResult()>> tasks;
  tasks.reserve(jobs.size());
  for (const TraceJob& job : jobs) {
    tasks.push_back([this, &job] {
      const ExternalGraphRuntime rt(job.config ? *job.config : config_);
      return rt.run_trace(*job.trace, job.request, job.edge_list_bytes);
    });
  }
  return map_tasks(tasks);
}

std::vector<RunReport> ExperimentRunner::run_all(
    const graph::CsrGraph& graph, const std::vector<RunRequest>& requests) {
  std::vector<SweepJob> jobs(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    jobs[i].graph = &graph;
    jobs[i].request = requests[i];
  }
  return run_all(jobs);
}

RunReport ExperimentRunner::run(const graph::CsrGraph& graph,
                                const RunRequest& request) {
  ExternalGraphRuntime rt(config_);
  return rt.run(graph, request);
}

}  // namespace cxlgraph::core
