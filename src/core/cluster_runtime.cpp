#include "core/cluster_runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/sssp.hpp"
#include "core/experiment_runner.hpp"
#include "device/pcie.hpp"

namespace cxlgraph::core {

namespace {

using graph::VertexId;
using util::SimTime;

/// A frontier vertex ID travels between shards as one vertex-ID word.
constexpr std::uint64_t kExchangeBytesPerVertex = graph::kBytesPerEdge;

/// One exchange phase (the traffic between two consecutive supersteps).
struct ExchangePhase {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
};

/// Appends `local`'s sublist to `step`, chunked exactly like
/// algo::build_trace so a single-shard trace is bit-identical to the
/// unsharded one.
void append_local_sublist(const graph::CsrGraph& g, VertexId local,
                          algo::TraceStep& step, algo::AccessTrace& trace) {
  const std::uint64_t total = g.sublist_bytes(local);
  if (total == 0) return;
  std::uint64_t offset = g.sublist_byte_offset(local);
  std::uint64_t remaining = total;
  while (remaining > 0) {
    const std::uint64_t chunk =
        std::min(remaining, algo::kMaxWorkChunkBytes);
    step.reads.push_back(algo::SublistRef{local, offset, chunk});
    trace.total_sublist_bytes += chunk;
    ++trace.total_reads;
    offset += chunk;
    remaining -= chunk;
  }
}

std::vector<std::vector<VertexId>> frontiers_for(
    const graph::CsrGraph& g, Algorithm algorithm, VertexId source) {
  switch (algorithm) {
    case Algorithm::kBfs:
      return algo::bfs(g, source).frontiers;
    case Algorithm::kSssp:
      return algo::sssp_frontier(g, source).frontiers;
    case Algorithm::kCc:
      return algo::connected_components(g).frontiers;
    default:
      break;
  }
  throw std::invalid_argument(
      "ClusterRuntime: algorithm has no superstep decomposition: " +
      to_string(algorithm));
}

/// Single source of truth for what run() accepts: the frontier algorithms
/// frontiers_for decomposes, plus the sequential PageRank sweep.
bool has_superstep_decomposition(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBfs:
    case Algorithm::kSssp:
    case Algorithm::kCc:
    case Algorithm::kPagerankScan:
      return true;
    default:
      return false;
  }
}

}  // namespace

ClusterRuntime::ClusterRuntime(SystemConfig config, unsigned jobs)
    : runner_(std::move(config), jobs) {}

ClusterReport ClusterRuntime::run(const graph::CsrGraph& graph,
                                  const ClusterRequest& request) {
  if (!request.shard_configs.empty() &&
      request.shard_configs.size() != request.num_shards) {
    throw std::invalid_argument(
        "ClusterRequest: shard_configs must be empty or one per shard");
  }
  const Algorithm algorithm = request.run.algorithm;
  if (!has_superstep_decomposition(algorithm)) {
    throw std::invalid_argument(
        "ClusterRuntime: algorithm has no superstep decomposition: " +
        to_string(algorithm));
  }

  const VertexId source = request.run.source.value_or(
      algo::pick_source(graph, request.run.source_seed));
  const std::uint32_t P = request.num_shards;
  const std::uint64_t n = graph.num_vertices();

  partition::Partition part = partition::make_partition(
      graph, request.strategy, P, request.partition_seed);

  // -------------------------------------------------------------------
  // Build one trace per shard, superstep-aligned: every shard has a step
  // for every kept global step (possibly with no reads — the shard still
  // pays the kernel-launch barrier). Steps with no reads on any shard are
  // dropped, matching algo::build_trace. Exchange phases are computed in
  // the same sweep from the shard subgraphs: a shard that discovers a
  // next-frontier vertex owned elsewhere sends its ID once.
  // -------------------------------------------------------------------
  std::vector<algo::AccessTrace> traces(P);
  std::vector<ExchangePhase> phases;

  if (algorithm == Algorithm::kPagerankScan) {
    // One sequential sweep of each shard's local edge list; ghost-rank
    // updates flow to owners after the iteration.
    bool any_reads = false;
    std::vector<algo::TraceStep> steps(P);
    for (std::uint32_t s = 0; s < P; ++s) {
      const partition::ShardGraph& shard = part.shards[s];
      steps[s].reads.reserve(shard.graph.num_vertices());
      for (VertexId l = 0; l < shard.graph.num_vertices(); ++l) {
        append_local_sublist(shard.graph, l, steps[s], traces[s]);
      }
      any_reads = any_reads || !steps[s].reads.empty();
    }
    if (any_reads) {
      ExchangePhase phase;
      for (std::uint32_t s = 0; s < P; ++s) {
        traces[s].steps.push_back(std::move(steps[s]));
        const partition::ShardGraph& shard = part.shards[s];
        const std::uint64_t ghosts =
            shard.local_to_global.size() - shard.num_owned;
        phase.messages += ghosts;
        phase.bytes += ghosts * kExchangeBytesPerVertex;
      }
      phases.push_back(phase);
    }
  } else {
    const std::vector<std::vector<VertexId>> frontiers =
        frontiers_for(graph, algorithm, source);
    // next_stamp[v] == k+1 marks v as a member of frontier k+1;
    // sent[v] deduplicates (superstep, shard, vertex) notifications.
    std::vector<std::uint64_t> next_stamp(n, 0);
    std::vector<std::uint64_t> sent(n, 0);
    std::uint64_t kept = 0;
    for (std::size_t k = 0; k < frontiers.size(); ++k) {
      std::vector<VertexId> frontier = frontiers[k];
      std::sort(frontier.begin(), frontier.end());

      std::vector<algo::TraceStep> steps(P);
      std::vector<std::vector<VertexId>> active_locals(P);
      bool any_reads = false;
      for (std::uint32_t s = 0; s < P; ++s) {
        const partition::ShardGraph& shard = part.shards[s];
        steps[s].reads.reserve(frontier.size() / P + 1);
        for (const VertexId u : frontier) {
          const VertexId l = shard.to_local(u);
          if (l == partition::kNoLocalId || shard.graph.degree(l) == 0) {
            continue;
          }
          append_local_sublist(shard.graph, l, steps[s], traces[s]);
          active_locals[s].push_back(l);
        }
        any_reads = any_reads || !steps[s].reads.empty();
      }
      if (!any_reads) continue;
      for (std::uint32_t s = 0; s < P; ++s) {
        traces[s].steps.push_back(std::move(steps[s]));
      }
      ++kept;

      if (P > 1 && k + 1 < frontiers.size()) {
        for (const VertexId v : frontiers[k + 1]) next_stamp[v] = k + 1;
        ExchangePhase phase;
        for (std::uint32_t s = 0; s < P; ++s) {
          const partition::ShardGraph& shard = part.shards[s];
          const std::uint64_t sent_stamp = kept * P + s + 1;
          for (const VertexId l : active_locals[s]) {
            for (const VertexId lv : shard.graph.neighbors(l)) {
              const VertexId g = shard.to_global(lv);
              if (next_stamp[g] != k + 1) continue;
              if (part.owner[g] == s) continue;
              if (sent[g] == sent_stamp) continue;
              sent[g] = sent_stamp;
              ++phase.messages;
              phase.bytes += kExchangeBytesPerVertex;
            }
          }
        }
        phases.push_back(phase);
      }
    }
  }

  // -------------------------------------------------------------------
  // Replay every shard on its own backend stack, fanned across workers.
  // -------------------------------------------------------------------
  std::vector<TraceJob> jobs(P);
  for (std::uint32_t s = 0; s < P; ++s) {
    jobs[s].trace = &traces[s];
    jobs[s].request = request.run;
    jobs[s].edge_list_bytes = part.shards[s].graph.edge_list_bytes();
    if (!request.shard_configs.empty()) {
      jobs[s].config = request.shard_configs[s];
    }
  }
  const std::vector<TraceRunResult> results = runner_.run_traces(jobs);

  // -------------------------------------------------------------------
  // Compose the cluster timeline.
  // -------------------------------------------------------------------
  ClusterReport report;
  report.partitioner = partition::to_string(request.strategy);
  report.num_shards = P;
  report.source = source;
  report.cut = part.stats;
  report.supersteps = results.empty() ? 0 : traces[0].steps.size();

  double compute_total_sec = 0.0;
  for (std::uint32_t s = 0; s < P; ++s) {
    RunReport shard_report = results[s].report;
    shard_report.source = source;
    shard_report.graph_edges = part.shards[s].graph.num_edges();
    report.fetched_bytes += shard_report.fetched_bytes;
    report.used_bytes += shard_report.used_bytes;
    report.transactions += shard_report.transactions;
    report.max_shard_compute_sec =
        std::max(report.max_shard_compute_sec, shard_report.runtime_sec);
    compute_total_sec += shard_report.runtime_sec;
    report.shard_reports.push_back(std::move(shard_report));
  }
  report.algorithm = report.shard_reports.front().algorithm;
  report.backend = report.shard_reports.front().backend;
  report.access_method = report.shard_reports.front().access_method;
  if (compute_total_sec > 0.0) {
    report.shard_compute_imbalance =
        report.max_shard_compute_sec /
        (compute_total_sec / static_cast<double>(P));
  }

  if (P == 1) {
    // Single shard: no barriers beyond the engine's own, no exchange. The
    // report reproduces ExternalGraphRuntime::run bit-for-bit.
    report.runtime_sec = report.shard_reports.front().runtime_sec;
    report.compute_sec = report.runtime_sec;
    return report;
  }

  SimTime compute_ps = 0;
  for (std::size_t k = 0; k < report.supersteps; ++k) {
    SimTime slowest = 0;
    for (std::uint32_t s = 0; s < P; ++s) {
      slowest = std::max(slowest, results[s].step_durations[k]);
    }
    compute_ps += slowest;
  }
  report.compute_sec = util::sec_from_ps(compute_ps);

  const double bandwidth_mbps =
      request.exchange_bandwidth_mbps > 0.0
          ? request.exchange_bandwidth_mbps
          : device::pcie_x16(config().gpu_link_gen).bandwidth_mbps;
  const double latency_sec =
      util::sec_from_ps(request.exchange_latency);
  for (const ExchangePhase& phase : phases) {
    report.exchange_bytes += phase.bytes;
    report.exchange_messages += phase.messages;
    report.exchange_sec += latency_sec + static_cast<double>(phase.bytes) /
                                             (bandwidth_mbps * 1.0e6);
  }
  report.runtime_sec = report.compute_sec + report.exchange_sec;
  return report;
}

}  // namespace cxlgraph::core
