#include "core/cluster_runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "algo/bfs.hpp"
#include "algo/cc.hpp"
#include "algo/dobfs.hpp"
#include "algo/sssp.hpp"
#include "algo/sssp_delta.hpp"
#include "core/experiment_runner.hpp"
#include "device/pcie.hpp"
#include "obs/telemetry.hpp"

namespace cxlgraph::core {

namespace {

using graph::VertexId;
using util::SimTime;

/// A frontier vertex ID travels between shards as one vertex-ID word.
constexpr std::uint64_t kExchangeBytesPerVertex = graph::kBytesPerEdge;
/// A delta-stepping relaxation request carries (target ID, candidate
/// distance): two words.
constexpr std::uint64_t kRelaxRequestBytes = 2 * graph::kBytesPerEdge;

/// One exchange phase (the traffic between two consecutive supersteps),
/// resolved per ordered (source, destination-owner) shard pair so the
/// asymmetric composition can find the slowest ingress.
struct ExchangePhase {
  std::uint64_t bytes = 0;
  std::uint64_t messages = 0;
  /// Row-major [from * num_shards + to]; diagonal stays zero.
  std::vector<std::uint64_t> pair_bytes;

  explicit ExchangePhase(std::uint32_t num_shards)
      : pair_bytes(static_cast<std::size_t>(num_shards) * num_shards, 0) {}

  void add(std::uint32_t num_shards, std::uint32_t from, std::uint32_t to,
           std::uint64_t message_bytes) {
    ++messages;
    bytes += message_bytes;
    pair_bytes[static_cast<std::size_t>(from) * num_shards + to] +=
        message_bytes;
  }
};

/// Appends the byte range [offset, offset + remaining) of `local`'s
/// sublist to `step`, chunked exactly like algo::build_trace /
/// algo::build_dobfs_trace so a single-shard trace is bit-identical to the
/// unsharded one.
void append_byte_range(VertexId local, std::uint64_t offset,
                       std::uint64_t remaining, algo::TraceStep& step,
                       algo::AccessTrace& trace) {
  while (remaining > 0) {
    const std::uint64_t chunk =
        std::min(remaining, algo::kMaxWorkChunkBytes);
    step.reads.push_back(algo::SublistRef{local, offset, chunk});
    trace.total_sublist_bytes += chunk;
    ++trace.total_reads;
    offset += chunk;
    remaining -= chunk;
  }
}

/// Appends `local`'s whole sublist to `step`.
void append_local_sublist(const graph::CsrGraph& g, VertexId local,
                          algo::TraceStep& step, algo::AccessTrace& trace) {
  append_byte_range(local, g.sublist_byte_offset(local),
                    g.sublist_bytes(local), step, trace);
}

/// Appends to `step` the local sublists of the sorted `actives` present on
/// `shard` with nonzero local degree; returns their local IDs. This is the
/// one scan loop every frontier-shaped superstep shares, so the shards=1
/// bit-identity chunking lives in a single place.
std::vector<VertexId> scan_actives(const partition::ShardGraph& shard,
                                   const std::vector<VertexId>& actives,
                                   std::size_t reserve_hint,
                                   algo::TraceStep& step,
                                   algo::AccessTrace& trace) {
  std::vector<VertexId> active_locals;
  step.reads.reserve(reserve_hint);
  for (const VertexId u : actives) {
    const VertexId l = shard.to_local(u);
    if (l == partition::kNoLocalId || shard.graph.degree(l) == 0) {
      continue;
    }
    append_local_sublist(shard.graph, l, step, trace);
    active_locals.push_back(l);
  }
  return active_locals;
}

/// One owner-notification sweep for shard `s`: every local neighbor of
/// `active_locals` whose global ID passes `is_target` and is owned
/// elsewhere gets one message of `message_bytes`, deduplicated via the
/// caller's `stamp` in `sent` (one stamp value per (superstep, shard)).
template <typename TargetPredicate>
void notify_remote_targets(const partition::Partition& part, std::uint32_t s,
                           const std::vector<VertexId>& active_locals,
                           std::vector<std::uint64_t>& sent,
                           std::uint64_t stamp, ExchangePhase& phase,
                           std::uint64_t message_bytes,
                           TargetPredicate is_target) {
  const partition::ShardGraph& shard = part.shards[s];
  for (const VertexId l : active_locals) {
    for (const VertexId lv : shard.graph.neighbors(l)) {
      const VertexId v = shard.to_global(lv);
      if (!is_target(v)) continue;
      const std::uint32_t to = part.owner[v];
      if (to == s) continue;
      if (sent[v] == stamp) continue;
      sent[v] = stamp;
      phase.add(part.num_shards, s, to, message_bytes);
    }
  }
}

std::vector<std::vector<VertexId>> frontiers_for(
    const graph::CsrGraph& g, Algorithm algorithm, VertexId source) {
  switch (algorithm) {
    case Algorithm::kBfs:
      return algo::bfs(g, source).frontiers;
    case Algorithm::kSssp:
      return algo::sssp_frontier(g, source).frontiers;
    case Algorithm::kCc:
      return algo::connected_components(g).frontiers;
    default:
      break;
  }
  throw std::invalid_argument(
      "ClusterRuntime: algorithm has no superstep decomposition: " +
      to_string(algorithm));
}

/// PageRank-style sweep: one superstep scanning each shard's local edge
/// list; ghost-rank updates flow to their owners afterwards.
void decompose_pagerank(const partition::Partition& part,
                        std::vector<algo::AccessTrace>& traces,
                        std::vector<ExchangePhase>& phases) {
  const std::uint32_t P = part.num_shards;
  bool any_reads = false;
  std::vector<algo::TraceStep> steps(P);
  for (std::uint32_t s = 0; s < P; ++s) {
    const partition::ShardGraph& shard = part.shards[s];
    steps[s].reads.reserve(shard.graph.num_vertices());
    for (VertexId l = 0; l < shard.graph.num_vertices(); ++l) {
      append_local_sublist(shard.graph, l, steps[s], traces[s]);
    }
    any_reads = any_reads || !steps[s].reads.empty();
  }
  if (!any_reads) return;
  ExchangePhase phase(P);
  for (std::uint32_t s = 0; s < P; ++s) {
    const partition::ShardGraph& shard = part.shards[s];
    traces[s].append_step(steps[s], /*keep_if_empty=*/true);
    for (VertexId l = 0; l < shard.graph.num_vertices(); ++l) {
      const std::uint32_t to = part.owner[shard.to_global(l)];
      if (to == s) continue;  // owned, not a ghost
      phase.add(P, s, to, kExchangeBytesPerVertex);
    }
  }
  phases.push_back(std::move(phase));
}

/// Frontier algorithms (BFS, Bellman-Ford SSSP, CC): one superstep per
/// frontier; a shard that discovers a next-frontier vertex owned elsewhere
/// sends its ID to the owner once per (superstep, shard, vertex).
void decompose_frontiers(
    const graph::CsrGraph& g, const partition::Partition& part,
    const std::vector<std::vector<VertexId>>& frontiers,
    std::vector<algo::AccessTrace>& traces,
    std::vector<ExchangePhase>& phases) {
  const std::uint32_t P = part.num_shards;
  const std::uint64_t n = g.num_vertices();
  // next_stamp[v] == k+1 marks v as a member of frontier k+1; sent[v]
  // deduplicates (superstep, shard, vertex) notifications.
  std::vector<std::uint64_t> next_stamp(n, 0);
  std::vector<std::uint64_t> sent(n, 0);
  std::uint64_t stamp = 0;
  for (std::size_t k = 0; k < frontiers.size(); ++k) {
    std::vector<VertexId> frontier = frontiers[k];
    std::sort(frontier.begin(), frontier.end());

    std::vector<algo::TraceStep> steps(P);
    std::vector<std::vector<VertexId>> active_locals(P);
    bool any_reads = false;
    for (std::uint32_t s = 0; s < P; ++s) {
      active_locals[s] = scan_actives(part.shards[s], frontier,
                                      frontier.size() / P + 1, steps[s],
                                      traces[s]);
      any_reads = any_reads || !steps[s].reads.empty();
    }
    if (!any_reads) continue;
    for (std::uint32_t s = 0; s < P; ++s) {
      traces[s].append_step(steps[s], /*keep_if_empty=*/true);
    }

    if (P > 1 && k + 1 < frontiers.size()) {
      for (const VertexId v : frontiers[k + 1]) next_stamp[v] = k + 1;
      ExchangePhase phase(P);
      for (std::uint32_t s = 0; s < P; ++s) {
        ++stamp;
        notify_remote_targets(part, s, active_locals[s], sent, stamp,
                              phase, kExchangeBytesPerVertex,
                              [&next_stamp, k](VertexId v) {
                                return next_stamp[v] == k + 1;
                              });
      }
      phases.push_back(std::move(phase));
    }
  }
}

/// Direction-optimizing BFS: per superstep every shard votes push vs pull
/// from its local frontier stats; the aggregate — which equals the
/// whole-graph stats, since each edge is stored on exactly one shard and
/// each frontier vertex owned by exactly one — feeds the same
/// algo::DirectionDecider the single runtime uses, so the cluster runs one
/// direction per superstep and the decision sequence is shard-count
/// invariant (at shards=1 it is bit-identical to build_dobfs_trace). Pull
/// supersteps scan unvisited local sublists with the first-found-parent
/// early exit applied against the shard's local neighbor list.
void decompose_dobfs(const graph::CsrGraph& g,
                     const partition::Partition& part, VertexId source,
                     std::vector<algo::AccessTrace>& traces,
                     std::vector<ExchangePhase>& phases,
                     ClusterReport& report) {
  const std::uint32_t P = part.num_shards;
  const std::uint64_t n = g.num_vertices();
  // Depths drive both the pull-phase early exit and the next-frontier
  // membership test; direction-optimized depths equal plain BFS depths.
  const algo::BfsResult bfs = algo::bfs(g, source);

  algo::DirectionDecider decider(g.num_edges(), n);
  std::vector<std::uint64_t> sent(n, 0);
  std::uint64_t stamp = 0;

  for (std::size_t k = 0; k < bfs.frontiers.size(); ++k) {
    std::vector<VertexId> frontier = bfs.frontiers[k];
    std::sort(frontier.begin(), frontier.end());

    // The vote: every level consumes one decision, kept or not, so the
    // decider's hysteresis matches the single runtime's level for level.
    algo::DirectionVote aggregate;
    for (std::uint32_t s = 0; s < P; ++s) {
      const partition::ShardGraph& shard = part.shards[s];
      algo::DirectionVote vote;
      for (const VertexId u : frontier) {
        if (part.owner[u] == s) ++vote.frontier_vertices;
        const VertexId l = shard.to_local(u);
        if (l != partition::kNoLocalId) {
          vote.frontier_edges += shard.graph.degree(l);
        }
      }
      aggregate += vote;
    }
    const bool bottom_up = decider.decide_bottom_up(aggregate);

    std::vector<algo::TraceStep> steps(P);
    std::vector<std::vector<VertexId>> active_locals(P);
    // Pull-phase discoveries: global vertices a shard found a parent for.
    std::vector<std::vector<VertexId>> discovered(P);
    bool any_reads = false;
    for (std::uint32_t s = 0; s < P; ++s) {
      const partition::ShardGraph& shard = part.shards[s];
      if (!bottom_up) {
        active_locals[s] = scan_actives(shard, frontier,
                                        frontier.size() / P + 1, steps[s],
                                        traces[s]);
      } else {
        for (VertexId l = 0; l < shard.graph.num_vertices(); ++l) {
          const VertexId v = shard.to_global(l);
          const std::uint32_t d = bfs.depth[v];
          const bool unvisited_at_level =
              d == algo::kUnreachedDepth || d > k;
          if (!unvisited_at_level || shard.graph.degree(l) == 0) continue;
          std::uint64_t scanned = 0;
          bool found = false;
          for (const VertexId lu : shard.graph.neighbors(l)) {
            ++scanned;
            if (bfs.depth[shard.to_global(lu)] == k) {
              found = true;
              break;
            }
          }
          append_byte_range(l, shard.graph.sublist_byte_offset(l),
                            scanned * graph::kBytesPerEdge, steps[s],
                            traces[s]);
          if (found) discovered[s].push_back(v);
        }
      }
      any_reads = any_reads || !steps[s].reads.empty();
    }
    if (!any_reads) continue;
    for (std::uint32_t s = 0; s < P; ++s) {
      traces[s].append_step(steps[s], /*keep_if_empty=*/true);
    }
    report.superstep_bottom_up.push_back(bottom_up ? 1 : 0);

    if (P > 1 && k + 1 < bfs.frontiers.size()) {
      ExchangePhase phase(P);
      for (std::uint32_t s = 0; s < P; ++s) {
        if (!bottom_up) {
          // Push: owners of remotely discovered next-frontier vertices
          // get one notification per (superstep, shard, vertex). Pull
          // needs no stamp: discovered[s] already holds each vertex at
          // most once per shard.
          ++stamp;
          notify_remote_targets(part, s, active_locals[s], sent, stamp,
                                phase, kExchangeBytesPerVertex,
                                [&bfs, k](VertexId v) {
                                  return bfs.depth[v] == k + 1;
                                });
        } else {
          // Pull: a shard that found a parent for a vertex it does not
          // own notifies the owner (each vertex scanned once per shard).
          for (const VertexId v : discovered[s]) {
            const std::uint32_t to = part.owner[v];
            if (to == s) continue;
            phase.add(P, s, to, kExchangeBytesPerVertex);
          }
        }
      }
      phases.push_back(std::move(phase));
    }
  }
}

/// Delta-stepping SSSP: one superstep per relaxation phase, barrier-
/// delimited along bucket epochs. Every scanned cut edge emits a
/// relaxation request (target ID + candidate distance) to the target's
/// owner, deduplicated per (phase, shard, target) — requests travel
/// whether or not the relaxation wins, as in a real distributed
/// delta-stepping where only the owner knows the current distance.
void decompose_delta(const graph::CsrGraph& g,
                     const partition::Partition& part, VertexId source,
                     std::vector<algo::AccessTrace>& traces,
                     std::vector<ExchangePhase>& phases,
                     ClusterReport& report) {
  const std::uint32_t P = part.num_shards;
  const std::uint64_t n = g.num_vertices();
  const algo::DeltaSteppingResult delta =
      algo::sssp_delta_stepping(g, source);
  report.bucket_epochs = delta.buckets_processed;

  std::vector<std::uint64_t> sent(n, 0);
  std::uint64_t stamp = 0;
  for (std::size_t p = 0; p < delta.phases.size(); ++p) {
    std::vector<VertexId> scan = delta.phases[p];
    std::sort(scan.begin(), scan.end());

    std::vector<algo::TraceStep> steps(P);
    std::vector<std::vector<VertexId>> active_locals(P);
    bool any_reads = false;
    for (std::uint32_t s = 0; s < P; ++s) {
      active_locals[s] = scan_actives(part.shards[s], scan,
                                      scan.size() / P + 1, steps[s],
                                      traces[s]);
      any_reads = any_reads || !steps[s].reads.empty();
    }
    if (!any_reads) continue;
    for (std::uint32_t s = 0; s < P; ++s) {
      traces[s].append_step(steps[s], /*keep_if_empty=*/true);
    }
    report.superstep_bucket.push_back(delta.phase_bucket[p]);

    if (P > 1 && p + 1 < delta.phases.size()) {
      ExchangePhase phase(P);
      for (std::uint32_t s = 0; s < P; ++s) {
        ++stamp;
        // Every scanned cut edge is a relaxation request.
        notify_remote_targets(part, s, active_locals[s], sent, stamp,
                              phase, kRelaxRequestBytes,
                              [](VertexId) { return true; });
      }
      phases.push_back(std::move(phase));
    }
  }
}

}  // namespace

bool cluster_supports(Algorithm algorithm) noexcept {
  switch (algorithm) {
    case Algorithm::kBfs:
    case Algorithm::kSssp:
    case Algorithm::kCc:
    case Algorithm::kPagerankScan:
    case Algorithm::kBfsDirOpt:
    case Algorithm::kSsspDelta:
      return true;
    default:
      return false;
  }
}

namespace {

/// Post-hoc cluster timeline: compute spans on a "supersteps" track and
/// exchange spans on an "exchange" track, laid out exactly as the
/// composed makespan charges them (superstep k, then exchange phase k).
void record_cluster_telemetry(obs::Telemetry& telemetry,
                              const ClusterReport& report) {
  if (telemetry.tracing()) {
    obs::SpanTracer& tracer = telemetry.tracer();
    const std::uint16_t compute_track =
        tracer.track("cluster", "supersteps");
    const std::uint16_t exchange_track = tracer.track("cluster", "exchange");
    const std::uint32_t n_step = tracer.intern("superstep");
    const std::uint32_t n_exchange = tracer.intern("exchange");
    const std::uint32_t k_bytes = tracer.intern("bytes");
    SimTime at = 0;
    for (std::size_t k = 0; k < report.superstep_compute_ps.size(); ++k) {
      tracer.complete(compute_track, n_step, at,
                      report.superstep_compute_ps[k], k_bytes,
                      k < report.superstep_fetched_bytes.size()
                          ? report.superstep_fetched_bytes[k]
                          : 0);
      at += report.superstep_compute_ps[k];
      if (k < report.exchange_phase_ps.size()) {
        tracer.complete(exchange_track, n_exchange, at,
                        report.exchange_phase_ps[k]);
        at += report.exchange_phase_ps[k];
      }
    }
  }
  if (telemetry.metering()) {
    obs::MetricsRegistry& metrics = telemetry.metrics();
    metrics.counter("cluster", "supersteps").add(report.supersteps);
    metrics.counter("cluster", "exchange_bytes").add(report.exchange_bytes);
    metrics.counter("cluster", "exchange_messages")
        .add(report.exchange_messages);
    metrics.gauge("cluster", "ingress_skew").set(report.exchange_ingress_skew);
    metrics.gauge("cluster", "compute_imbalance")
        .set(report.shard_compute_imbalance);
  }
}

}  // namespace

ClusterRuntime::ClusterRuntime(SystemConfig config, unsigned jobs)
    : runner_(std::move(config), jobs) {}

ClusterReport ClusterRuntime::run(const graph::CsrGraph& graph,
                                  const ClusterRequest& request) {
  if (!request.shard_configs.empty() &&
      request.shard_configs.size() != request.num_shards) {
    throw std::invalid_argument(
        "ClusterRequest: shard_configs must be empty or one per shard");
  }
  const Algorithm algorithm = request.run.algorithm;
  if (!cluster_supports(algorithm)) {
    throw std::invalid_argument(
        "ClusterRuntime: algorithm has no superstep decomposition: " +
        to_string(algorithm));
  }

  const VertexId source = request.run.source.value_or(
      algo::pick_source(graph, request.run.source_seed));
  const std::uint32_t P = request.num_shards;

  partition::Partition part = partition::make_partition(
      graph, request.strategy, P, request.partition_seed, request.reorder);

  // -------------------------------------------------------------------
  // Build one trace per shard, superstep-aligned: every shard has a step
  // for every kept global step (possibly with no reads — the shard still
  // pays the kernel-launch barrier). Steps with no reads on any shard are
  // dropped, matching the single-runtime trace builders. Exchange phases
  // are computed in the same sweep from the shard subgraphs.
  // -------------------------------------------------------------------
  ClusterReport report;
  std::vector<algo::AccessTrace> traces(P);
  std::vector<ExchangePhase> phases;

  switch (algorithm) {
    case Algorithm::kPagerankScan:
      decompose_pagerank(part, traces, phases);
      break;
    case Algorithm::kBfsDirOpt:
      decompose_dobfs(graph, part, source, traces, phases, report);
      break;
    case Algorithm::kSsspDelta:
      decompose_delta(graph, part, source, traces, phases, report);
      break;
    default:
      decompose_frontiers(graph, part,
                          frontiers_for(graph, algorithm, source), traces,
                          phases);
      break;
  }

  // -------------------------------------------------------------------
  // Replay every shard on its own backend stack, fanned across workers.
  // -------------------------------------------------------------------
  std::vector<TraceJob> jobs(P);
  for (std::uint32_t s = 0; s < P; ++s) {
    jobs[s].trace = &traces[s];
    jobs[s].request = request.run;
    jobs[s].edge_list_bytes = part.shards[s].graph.edge_list_bytes();
    if (!request.shard_configs.empty()) {
      jobs[s].config = request.shard_configs[s];
    }
  }
  const std::vector<TraceRunResult> results = runner_.run_traces(jobs);

  // -------------------------------------------------------------------
  // Compose the cluster timeline.
  // -------------------------------------------------------------------
  report.partitioner = partition::to_string(request.strategy);
  report.num_shards = P;
  report.source = source;
  report.cut = part.stats;
  report.supersteps = results.empty() ? 0 : traces[0].num_steps();
  report.pair_exchange_bytes.assign(static_cast<std::size_t>(P) * P, 0);

  double compute_total_sec = 0.0;
  for (std::uint32_t s = 0; s < P; ++s) {
    RunReport shard_report = results[s].report;
    shard_report.source = source;
    shard_report.graph_edges = part.shards[s].graph.num_edges();
    report.fetched_bytes += shard_report.fetched_bytes;
    report.used_bytes += shard_report.used_bytes;
    report.transactions += shard_report.transactions;
    report.max_shard_compute_sec =
        std::max(report.max_shard_compute_sec, shard_report.runtime_sec);
    compute_total_sec += shard_report.runtime_sec;
    report.shard_reports.push_back(std::move(shard_report));
  }
  report.algorithm = report.shard_reports.front().algorithm;
  report.backend = report.shard_reports.front().backend;
  report.access_method = report.shard_reports.front().access_method;
  if (compute_total_sec > 0.0) {
    report.shard_compute_imbalance =
        report.max_shard_compute_sec /
        (compute_total_sec / static_cast<double>(P));
  }

  // Per-superstep cluster-wide fetched bytes (the serving layer charges
  // these against the shared link superstep by superstep).
  report.superstep_fetched_bytes.assign(report.supersteps, 0);
  for (std::uint32_t s = 0; s < P; ++s) {
    for (std::size_t k = 0; k < report.supersteps; ++k) {
      report.superstep_fetched_bytes[k] +=
          results[s].step_fetched_bytes[k];
    }
  }

  if (P == 1) {
    // Single shard: no barriers beyond the engine's own, no exchange. The
    // report reproduces ExternalGraphRuntime::run bit-for-bit.
    report.superstep_compute_ps = results.front().step_durations;
    report.runtime_sec = report.shard_reports.front().runtime_sec;
    report.compute_sec = report.runtime_sec;
    if (telemetry_ != nullptr && telemetry_->enabled()) {
      record_cluster_telemetry(*telemetry_, report);
    }
    return report;
  }

  SimTime compute_ps = 0;
  report.superstep_compute_ps.reserve(report.supersteps);
  for (std::size_t k = 0; k < report.supersteps; ++k) {
    SimTime slowest = 0;
    for (std::uint32_t s = 0; s < P; ++s) {
      slowest = std::max(slowest, results[s].step_durations[k]);
    }
    report.superstep_compute_ps.push_back(slowest);
    compute_ps += slowest;
  }
  report.compute_sec = util::sec_from_ps(compute_ps);

  const double bandwidth_mbps =
      request.exchange_bandwidth_mbps > 0.0
          ? request.exchange_bandwidth_mbps
          : device::pcie_x16(config().gpu_link_gen).bandwidth_mbps;
  // Asymmetric composition: a phase ends when the slowest-ingress shard
  // has drained, so the phase costs max over destinations of the bytes
  // converging there — not the bulk total over one shared pipe. Each
  // phase is costed once, in integer picoseconds; exchange_sec is the
  // sum of those phases, so the per-phase seam decomposes the totals
  // exactly (the same pattern compute_sec uses).
  std::uint64_t sum_max_ingress = 0;
  SimTime exchange_ps = 0;
  for (const ExchangePhase& phase : phases) {
    report.exchange_bytes += phase.bytes;
    report.exchange_messages += phase.messages;
    std::uint64_t max_ingress = 0;
    for (std::uint32_t t = 0; t < P; ++t) {
      std::uint64_t ingress = 0;
      for (std::uint32_t s = 0; s < P; ++s) {
        ingress += phase.pair_bytes[static_cast<std::size_t>(s) * P + t];
      }
      max_ingress = std::max(max_ingress, ingress);
    }
    sum_max_ingress += max_ingress;
    const SimTime phase_ps =
        request.exchange_latency +
        static_cast<SimTime>(static_cast<double>(max_ingress) *
                             util::ps_per_byte(bandwidth_mbps));
    report.exchange_phase_ps.push_back(phase_ps);
    exchange_ps += phase_ps;
    for (std::size_t i = 0; i < phase.pair_bytes.size(); ++i) {
      report.pair_exchange_bytes[i] += phase.pair_bytes[i];
    }
  }
  report.exchange_sec = util::sec_from_ps(exchange_ps);
  if (report.exchange_bytes > 0) {
    // Balanced all-to-all would cost total/P per phase; the skew is how
    // much the slowest ingress exceeded that.
    report.exchange_ingress_skew =
        static_cast<double>(sum_max_ingress) * static_cast<double>(P) /
        static_cast<double>(report.exchange_bytes);
  }
  report.runtime_sec = report.compute_sec + report.exchange_sec;
  if (telemetry_ != nullptr && telemetry_->enabled()) {
    record_cluster_telemetry(*telemetry_, report);
  }
  return report;
}

}  // namespace cxlgraph::core
