#pragma once
/// \file experiment_runner.hpp
/// Fans independent experiment runs across a thread pool.
///
/// Every ExternalGraphRuntime::run is deterministic in (SystemConfig,
/// graph, RunRequest) and shares no mutable state with other runs, so an
/// ablation sweep's configurations can execute on worker threads while the
/// results come back in insertion order — bit-identical to the serial
/// sweep, just faster.
///
///   core::ExperimentRunner runner(core::table4_system(), /*jobs=*/0);
///   std::vector<core::RunRequest> requests = ...;  // one per config
///   std::vector<core::RunReport> reports = runner.run_all(graph, requests);

#include <memory>
#include <optional>
#include <vector>

#include "core/runtime.hpp"
#include "util/thread_pool.hpp"

namespace cxlgraph::core {

/// One independent unit of a sweep: a request against a graph, optionally
/// under a job-specific SystemConfig (for sweeps over the system itself,
/// e.g. CXL device counts or PCIe generations). The graph must outlive the
/// run_all call.
struct SweepJob {
  const graph::CsrGraph* graph = nullptr;
  RunRequest request;
  std::optional<SystemConfig> config;
};

class ExperimentRunner {
 public:
  /// `jobs` worker threads: 0 means hardware concurrency, 1 runs serially
  /// on the calling thread (no pool is created).
  explicit ExperimentRunner(SystemConfig config, unsigned jobs = 0);

  /// Runs every job and returns reports in insertion order, regardless of
  /// completion order. The first exception thrown by any run propagates
  /// after all jobs finish or are drained.
  std::vector<RunReport> run_all(const std::vector<SweepJob>& jobs);

  /// Convenience: every request runs against the same graph under the
  /// runner's default config.
  std::vector<RunReport> run_all(const graph::CsrGraph& graph,
                                 const std::vector<RunRequest>& requests);

  /// One serial run under the default config (baselines, warm-up).
  RunReport run(const graph::CsrGraph& graph, const RunRequest& request);

  const SystemConfig& config() const noexcept { return config_; }

  /// Number of worker threads the sweeps fan out across (1 when serial).
  unsigned workers() const noexcept;

 private:
  SystemConfig config_;
  unsigned jobs_;
  /// Created lazily by the first multi-job run_all, so runners that only
  /// ever see empty or single-job sweeps never spawn threads.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace cxlgraph::core
