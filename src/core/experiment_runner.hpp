#pragma once
/// \file experiment_runner.hpp
/// Fans independent experiment runs across a thread pool.
///
/// Every ExternalGraphRuntime::run is deterministic in (SystemConfig,
/// graph, RunRequest) and shares no mutable state with other runs, so an
/// ablation sweep's configurations can execute on worker threads while the
/// results come back in insertion order — bit-identical to the serial
/// sweep, just faster.
///
///   core::ExperimentRunner runner(core::table4_system(), /*jobs=*/0);
///   std::vector<core::RunRequest> requests = ...;  // one per config
///   std::vector<core::RunReport> reports = runner.run_all(graph, requests);

#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/runtime.hpp"
#include "util/thread_pool.hpp"

namespace cxlgraph::core {

/// One independent unit of a sweep: a request against a graph, optionally
/// under a job-specific SystemConfig (for sweeps over the system itself,
/// e.g. CXL device counts or PCIe generations). The graph must outlive the
/// run_all call.
struct SweepJob {
  const graph::CsrGraph* graph = nullptr;
  RunRequest request;
  std::optional<SystemConfig> config;
};

/// A prepared-trace run: ClusterRuntime builds one trace per shard and fans
/// them here, each against its own backend stack (and optionally its own
/// per-shard SystemConfig). The trace must outlive the run_traces call.
struct TraceJob {
  const algo::AccessTrace* trace = nullptr;
  RunRequest request;
  /// Edge-list bytes resident on this runtime's external memory (cache
  /// capacity scaling); a shard passes its slice, not the whole graph.
  std::uint64_t edge_list_bytes = 0;
  std::optional<SystemConfig> config;
};

class ExperimentRunner {
 public:
  /// `jobs` worker threads: 0 means hardware concurrency, 1 runs serially
  /// on the calling thread (no pool is created).
  explicit ExperimentRunner(SystemConfig config, unsigned jobs = 0);

  /// Runs every job and returns reports in insertion order, regardless of
  /// completion order. The first exception thrown by any run propagates
  /// after all jobs finish or are drained.
  std::vector<RunReport> run_all(const std::vector<SweepJob>& jobs);

  /// Convenience: every request runs against the same graph under the
  /// runner's default config.
  std::vector<RunReport> run_all(const graph::CsrGraph& graph,
                                 const std::vector<RunRequest>& requests);

  /// Runs every prepared-trace job (ExternalGraphRuntime::run_trace) with
  /// the same ordering and determinism guarantees as run_all.
  std::vector<TraceRunResult> run_traces(const std::vector<TraceJob>& jobs);

  /// Fans arbitrary independent tasks across the runner's workers; results
  /// come back in insertion order. For sweep drivers whose work units are
  /// not RunRequests (e.g. fig3's per-(algorithm, dataset) trace + RAF
  /// evaluation). The first exception propagates after all tasks drain.
  template <typename R>
  std::vector<R> map_tasks(const std::vector<std::function<R()>>& tasks) {
    static_assert(!std::is_same_v<R, bool>,
                  "std::vector<bool> packs bits: concurrent per-slot "
                  "writes race; wrap the result in a struct instead");
    std::vector<R> results(tasks.size());
    if (jobs_ == 1 || tasks.size() <= 1) {
      for (std::size_t i = 0; i < tasks.size(); ++i) results[i] = tasks[i]();
      return results;
    }
    util::ThreadPool& pool = ensure_pool();
    std::vector<std::future<void>> futures;
    futures.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      futures.push_back(
          pool.submit([&tasks, &results, i] { results[i] = tasks[i](); }));
    }
    std::exception_ptr first_error;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

  /// One serial run under the default config (baselines, warm-up).
  RunReport run(const graph::CsrGraph& graph, const RunRequest& request);

  const SystemConfig& config() const noexcept { return config_; }

  /// Number of worker threads the sweeps fan out across (1 when serial).
  unsigned workers() const noexcept;

 private:
  util::ThreadPool& ensure_pool();

  SystemConfig config_;
  unsigned jobs_;
  /// Created lazily by the first multi-job run_all, so runners that only
  /// ever see empty or single-job sweeps never spawn threads.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace cxlgraph::core
