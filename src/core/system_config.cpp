#include "core/system_config.hpp"

#include <stdexcept>

namespace cxlgraph::core {

std::string to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::kHostDram:
      return "host-dram";
    case BackendKind::kHostDramRemote:
      return "host-dram-remote";
    case BackendKind::kCxl:
      return "cxl";
    case BackendKind::kXlfdd:
      return "xlfdd";
    case BackendKind::kBamNvme:
      return "bam-nvme";
    case BackendKind::kUvm:
      return "uvm";
    case BackendKind::kTieredDramCxl:
      return "tiered-dram-cxl";
  }
  throw std::invalid_argument("unknown BackendKind");
}

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kBfs:
      return "bfs";
    case Algorithm::kSssp:
      return "sssp";
    case Algorithm::kCc:
      return "cc";
    case Algorithm::kPagerankScan:
      return "pagerank-scan";
    case Algorithm::kBfsDirOpt:
      return "bfs-dir-opt";
    case Algorithm::kSsspDelta:
      return "sssp-delta";
    case Algorithm::kBfsWriteback:
      return "bfs-writeback";
  }
  throw std::invalid_argument("unknown Algorithm");
}

BackendKind backend_from_name(const std::string& name) {
  for (const BackendKind kind :
       {BackendKind::kHostDram, BackendKind::kHostDramRemote,
        BackendKind::kCxl, BackendKind::kXlfdd, BackendKind::kBamNvme,
        BackendKind::kUvm, BackendKind::kTieredDramCxl}) {
    if (to_string(kind) == name) return kind;
  }
  throw std::invalid_argument("unknown backend: " + name);
}

Algorithm algorithm_from_name(const std::string& name) {
  for (const Algorithm algorithm :
       {Algorithm::kBfs, Algorithm::kSssp, Algorithm::kCc,
        Algorithm::kPagerankScan, Algorithm::kBfsDirOpt,
        Algorithm::kSsspDelta, Algorithm::kBfsWriteback}) {
    if (to_string(algorithm) == name) return algorithm;
  }
  throw std::invalid_argument("unknown algorithm: " + name);
}

SystemConfig table3_system() {
  SystemConfig cfg;
  cfg.gpu_link_gen = device::PcieGen::kGen4;  // RTX A5000, PCIe 4.0 x16
  cfg.dram_local.socket_hop = 0;              // single-socket Xeon
  cfg.dram_remote.socket_hop = util::ps_from_ns(100);
  cfg.xlfdd_drives = device::kXlfddArrayDrives;  // 16 XLFDDs
  cfg.nvme_drives = device::kNvmeArrayDrives;    // 4 NVMe SSDs (6 MIOPS)
  return cfg;
}

SystemConfig table4_system() {
  SystemConfig cfg;
  // Sec. 4.2.2: the GPU link is downgraded to Gen3 so that five CXL devices
  // (64 GPU-visible outstanding reads each = 320) exceed N_max = 256.
  cfg.gpu_link_gen = device::PcieGen::kGen3;
  cfg.dram_local.socket_hop = 0;  // DRAM 1, same socket as the GPU
  cfg.dram_remote.socket_hop = util::ps_from_ns(100);  // DRAM 0 via UPI
  cfg.cxl_devices = 5;
  return cfg;
}

}  // namespace cxlgraph::core
