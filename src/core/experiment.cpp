#include "core/experiment.hpp"

#include <cmath>
#include <future>
#include <sstream>

#include "algo/bfs.hpp"
#include "algo/sssp.hpp"
#include "analysis/model.hpp"
#include "analysis/requirements.hpp"
#include "cache/raf.hpp"
#include "core/experiment_runner.hpp"
#include "gpusim/cpu_probe.hpp"
#include "gpusim/pointer_chase.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace cxlgraph::core {

namespace {

using util::TablePrinter;
using util::fmt;

std::string fmt_bytes_cell(std::uint64_t bytes) {
  return util::format_bytes(bytes);
}

void log_report(const RunReport& report) {
  CXLG_INFO(report.algorithm << " on " << report.backend << " ("
                             << report.access_method << "): t="
                             << fmt(report.runtime_sec * 1e3, 3) << " ms"
                             << ", T=" << fmt(report.throughput_mbps, 0)
                             << " MB/s, RAF=" << fmt(report.raf, 2)
                             << ", d=" << fmt(report.avg_transfer_bytes, 1)
                             << " B");
}

SweepJob make_job(const graph::CsrGraph& g, Algorithm algorithm,
                  BackendKind backend, const ExperimentOptions& options,
                  const RunRequest& base = {}) {
  SweepJob job;
  job.graph = &g;
  job.request = base;
  job.request.algorithm = algorithm;
  job.request.backend = backend;
  job.request.source_seed = options.seed;
  return job;
}

}  // namespace

std::vector<RunReport> run_sweep(const SystemConfig& config,
                                 const ExperimentOptions& options,
                                 const std::vector<SweepJob>& jobs) {
  ExperimentRunner runner(config, options.jobs);
  std::vector<RunReport> reports = runner.run_all(jobs);
  if (options.verbose) {
    // Logged after collection so the order matches the serial sweep.
    for (const RunReport& report : reports) log_report(report);
  }
  return reports;
}

DatasetBundle make_datasets(const ExperimentOptions& options) {
  const auto& specs = graph::paper_datasets();
  DatasetBundle bundle;
  bundle.entries.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    bundle.entries[i].spec = specs[i];
  }
  if (options.jobs != 0) {
    // An explicit worker count bounds the whole run to that many threads:
    // the datasets generate one after another, each fanning its edge
    // chunks across `jobs` workers (serially for jobs == 1).
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (options.verbose) {
        CXLG_INFO("generating " << specs[i].name << " at scale "
                                << options.scale);
      }
      bundle.entries[i].graph = graph::make_dataset(
          specs[i].id, options.scale, /*weighted=*/true, options.seed,
          options.jobs);
    }
    return bundle;
  }
  // The three generations are independent; fan them out on a scoped pool.
  // Each generation's own chunk fan-out goes through the shared default
  // pool, so a dedicated (small) pool here cannot deadlock against it, and
  // chunk-seeded sampling keeps every graph bit-identical to the serial
  // path.
  util::ThreadPool pool(static_cast<unsigned>(specs.size()));
  util::parallel_for(pool, specs.size(),
                     [&bundle, &specs, &options](std::uint64_t begin,
                                                 std::uint64_t end) {
                       for (std::uint64_t i = begin; i < end; ++i) {
                         bundle.entries[i].graph = graph::make_dataset(
                             specs[i].id, options.scale, /*weighted=*/true,
                             options.seed);
                       }
                     });
  if (options.verbose) {
    for (const auto& spec : specs) {
      CXLG_INFO("generated " << spec.name << " at scale " << options.scale);
    }
  }
  return bundle;
}

TablePrinter table1_datasets(const ExperimentOptions& options) {
  TablePrinter table({"Dataset", "Vertices", "Edges", "Edge list",
                      "Avg degree*", "Avg sublist [B]"});
  const DatasetBundle bundle = make_datasets(options);
  for (const auto& entry : bundle.entries) {
    const graph::DegreeStats s = graph::degree_stats(entry.graph);
    table.add_row({entry.spec.paper_name + " (scale " +
                       std::to_string(options.scale) + ")",
                   util::fmt_count(s.num_vertices),
                   util::fmt_count(s.num_edges),
                   fmt_bytes_cell(s.edge_list_bytes),
                   fmt(s.avg_degree_nonzero, 1),
                   fmt(s.avg_sublist_bytes, 1)});
  }
  return table;
}

TablePrinter table2_frontier(const ExperimentOptions& options) {
  const graph::CsrGraph g = graph::make_dataset(
      graph::DatasetId::kUrand, options.scale, /*weighted=*/false,
      options.seed);
  const graph::VertexId source = algo::pick_source(g, options.seed);
  const algo::BfsResult result = algo::bfs(g, source);

  TablePrinter table({"Depth", "Number of vertices"});
  for (std::size_t depth = 0; depth < result.frontiers.size(); ++depth) {
    table.add_row({std::to_string(depth),
                   util::fmt_count(result.frontiers[depth].size())});
  }
  return table;
}

TablePrinter fig3_raf(const ExperimentOptions& options,
                      double cache_fraction) {
  const std::vector<std::uint32_t> alignments = {8,   16,  32,   64,  128,
                                                 256, 512, 1024, 2048, 4096};
  std::vector<std::string> headers = {"Workload"};
  for (auto a : alignments) headers.push_back(std::to_string(a) + "B");
  TablePrinter table(headers);

  const DatasetBundle bundle = make_datasets(options);

  // Each (algorithm, dataset) cell's trace + RAF sweep is independent of
  // the rest, so the six of them fan out across the runner's workers and
  // come back in row order — bit-identical to the serial loop.
  struct Cell {
    Algorithm algorithm;
    const DatasetBundle::Entry* entry;
  };
  std::vector<Cell> cells;
  for (const Algorithm algorithm : {Algorithm::kBfs, Algorithm::kSssp}) {
    for (const auto& entry : bundle.entries) {
      cells.push_back(Cell{algorithm, &entry});
    }
  }

  ExternalGraphRuntime rt(table3_system());
  std::vector<std::function<std::vector<double>()>> tasks;
  tasks.reserve(cells.size());
  for (const Cell& cell : cells) {
    tasks.push_back([&rt, &alignments, &options, cache_fraction, cell] {
      const graph::CsrGraph& g = cell.entry->graph;
      const graph::VertexId source = algo::pick_source(g, options.seed);
      const algo::AccessTrace trace =
          rt.make_trace(g, cell.algorithm, source);
      const auto capacity = static_cast<std::uint64_t>(
          cache_fraction * static_cast<double>(g.edge_list_bytes()));
      std::vector<double> rafs;
      rafs.reserve(alignments.size());
      for (const auto& r : cache::raf_sweep(trace, alignments, capacity)) {
        rafs.push_back(r.raf());
      }
      return rafs;
    });
  }
  ExperimentRunner runner(table3_system(), options.jobs);
  const std::vector<std::vector<double>> results = runner.map_tasks(tasks);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::vector<std::string> row = {to_string(cells[i].algorithm) + " " +
                                    cells[i].entry->spec.paper_name};
    for (const double raf : results[i]) row.push_back(fmt(raf, 2));
    table.add_row(std::move(row));
    if (options.verbose) {
      // Logged after collection so the order matches the serial sweep.
      CXLG_INFO("fig3: " << to_string(cells[i].algorithm) << " "
                         << cells[i].entry->spec.name << " done");
    }
  }
  return table;
}

TablePrinter fig4_model(const ExperimentOptions& options,
                        double cache_fraction) {
  // The paper's example external memory: S = 100 MIOPS, L = 16 us, on a
  // Gen4 x16 link (Sec. 3.2, Eq. 4): T = min(100 d, 48 d, 24000).
  analysis::ThroughputParams model;
  model.iops = 100.0e6;
  model.latency_sec = 16.0e-6;
  model.n_max = 768;
  model.bandwidth_mbps = 24'000.0;

  const graph::CsrGraph g = graph::make_dataset(
      graph::DatasetId::kUrand, options.scale, /*weighted=*/false,
      options.seed);
  ExternalGraphRuntime rt(table3_system());
  const graph::VertexId source = algo::pick_source(g, options.seed);
  const algo::AccessTrace trace =
      rt.make_trace(g, Algorithm::kBfs, source);
  const auto capacity = static_cast<std::uint64_t>(
      cache_fraction * static_cast<double>(g.edge_list_bytes()));

  TablePrinter table({"d [B]", "Total data D [MB]", "Throughput T [MB/s]",
                      "Runtime t [ms]"});
  for (const std::uint32_t d :
       {64u, 128u, 256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    cache::RafOptions raf_options;
    raf_options.alignment = d;  // BaM-style: transfer size = alignment
    raf_options.cache_capacity_bytes = capacity;
    const cache::RafResult raf = cache::evaluate_raf(trace, raf_options);
    const double total_mb =
        static_cast<double>(raf.fetched_bytes) / 1.0e6;
    const double t_mbps = analysis::throughput_mbps(model, d);
    const double runtime_ms =
        analysis::runtime_sec(model, static_cast<double>(raf.fetched_bytes),
                              d) *
        1.0e3;
    table.add_row({std::to_string(d), fmt(total_mb, 1), fmt(t_mbps, 0),
                   fmt(runtime_ms, 3)});
  }
  return table;
}

TablePrinter fig5_alignment_sweep(const ExperimentOptions& options) {
  const graph::CsrGraph g = graph::make_dataset(
      graph::DatasetId::kUrand, options.scale, /*weighted=*/false,
      options.seed);
  const std::vector<std::uint32_t> alignments = {16, 32, 64, 128, 256, 512};

  // Baseline + XLFDD alignment points + BaM, all independent: one batch.
  std::vector<SweepJob> jobs;
  jobs.push_back(make_job(g, Algorithm::kBfs, BackendKind::kHostDram,
                          options));
  for (const std::uint32_t a : alignments) {
    RunRequest req;
    req.alignment = a;
    jobs.push_back(make_job(g, Algorithm::kBfs, BackendKind::kXlfdd,
                            options, req));
  }
  jobs.push_back(make_job(g, Algorithm::kBfs, BackendKind::kBamNvme,
                          options));
  const std::vector<RunReport> reports =
      run_sweep(table3_system(), options, jobs);
  const RunReport& emogi = reports.front();

  TablePrinter table(
      {"Config", "Alignment [B]", "Runtime [ms]", "Normalized", "RAF",
       "d [B]", "T [MB/s]"});
  auto add = [&](const std::string& config, const RunReport& r,
                 std::uint32_t alignment) {
    table.add_row({config, std::to_string(alignment),
                   fmt(r.runtime_sec * 1e3, 3),
                   fmt(r.runtime_sec / emogi.runtime_sec, 2), fmt(r.raf, 2),
                   fmt(r.avg_transfer_bytes, 1),
                   fmt(r.throughput_mbps, 0)});
  };
  add("EMOGI host-DRAM (baseline)", emogi, 32);
  for (std::size_t i = 0; i < alignments.size(); ++i) {
    add("XLFDD", reports[1 + i], alignments[i]);
  }
  add("BaM NVMe", reports.back(), 4096);
  return table;
}

TablePrinter fig6_runtimes(const ExperimentOptions& options) {
  const DatasetBundle bundle = make_datasets(options);

  // 2 algorithms x 3 datasets x 3 backends, all independent: one batch of
  // 18 runs through the pool, consumed three at a time per row.
  std::vector<SweepJob> jobs;
  for (const Algorithm algorithm : {Algorithm::kBfs, Algorithm::kSssp}) {
    for (const auto& entry : bundle.entries) {
      for (const BackendKind backend :
           {BackendKind::kHostDram, BackendKind::kXlfdd,
            BackendKind::kBamNvme}) {
        jobs.push_back(make_job(entry.graph, algorithm, backend, options));
      }
    }
  }
  const std::vector<RunReport> reports =
      run_sweep(table3_system(), options, jobs);

  TablePrinter table({"Algorithm", "Dataset", "EMOGI [ms]", "XLFDD [ms]",
                      "XLFDD norm.", "BaM [ms]", "BaM norm."});
  std::size_t i = 0;
  for (const Algorithm algorithm : {Algorithm::kBfs, Algorithm::kSssp}) {
    for (const auto& entry : bundle.entries) {
      const RunReport& emogi = reports[i++];
      const RunReport& xlfdd = reports[i++];
      const RunReport& bam = reports[i++];
      table.add_row({to_string(algorithm), entry.spec.paper_name,
                     fmt(emogi.runtime_sec * 1e3, 3),
                     fmt(xlfdd.runtime_sec * 1e3, 3),
                     fmt(xlfdd.runtime_sec / emogi.runtime_sec, 2),
                     fmt(bam.runtime_sec * 1e3, 3),
                     fmt(bam.runtime_sec / emogi.runtime_sec, 2)});
    }
  }
  return table;
}

TablePrinter fig9_latency() {
  const SystemConfig cfg = table4_system();
  ExternalGraphRuntime rt(cfg);

  // Mean plus per-hop tails: the chase records every hop, so the report
  // quotes p50/p95/p99 (util::summarize_percentiles) alongside the
  // average the paper's bars show.
  TablePrinter table({"External memory", "Added latency [us]",
                      "Observed latency [us]", "p50 [us]", "p95 [us]",
                      "p99 [us]"});
  const auto add_row = [&table](const std::string& name,
                                const std::string& added,
                                const gpusim::PointerChaseResult& r) {
    const util::PercentileSummary s =
        util::summarize_percentiles(r.hop_us);
    table.add_row({name, added, fmt(r.mean_us, 2), fmt(s.p50, 2),
                   fmt(s.p95, 2), fmt(s.p99, 2)});
  };

  // DRAM 0 sits on the far socket; DRAM 1 on the GPU's socket. Both go
  // through the runtime's own measurement seam.
  add_row("DRAM 0 (remote)", "-",
          rt.measure_latency(BackendKind::kHostDramRemote));
  add_row("DRAM 1 (local)", "-",
          rt.measure_latency(BackendKind::kHostDram));

  for (const bool remote : {true, false}) {
    for (int added_us = 0; added_us <= 3; ++added_us) {
      // CXL 0 is attached to the far socket, CXL 3 to the GPU's socket
      // (the socket-hop variant the runtime seam does not model).
      sim::Simulator sim;
      device::PcieLink link(sim, device::pcie_x16(cfg.gpu_link_gen));
      device::CxlDeviceParams cp = cfg.cxl;
      cp.added_latency = util::ps_from_us(static_cast<double>(added_us));
      cp.socket_hop = remote ? util::ps_from_ns(100) : 0;
      device::CxlMemoryPool pool(sim, cp, 1, cfg.cxl_interleave_bytes);
      add_row(remote ? "CXL 0 (remote)" : "CXL 3 (local)",
              std::to_string(added_us),
              gpusim::pointer_chase(sim, link, pool));
    }
  }
  return table;
}

TablePrinter fig10_cxl_throughput() {
  const SystemConfig cfg = table4_system();
  TablePrinter table({"Added latency [us]", "Throughput [MB/s]",
                      "Observed latency [us]", "# outstanding (Little)"});
  for (double added = 0.0; added <= 10.0; added += 1.0) {
    device::CxlDeviceParams cp = cfg.cxl;
    cp.added_latency = util::ps_from_us(added);
    const gpusim::CpuProbeResult r = gpusim::cpu_random_read_probe(cp);
    table.add_row({fmt(added, 0), fmt(r.throughput_mbps, 0),
                   fmt(r.observed_latency_us, 2),
                   fmt(r.littles_law_outstanding, 1)});
  }
  return table;
}

TablePrinter fig11_cxl_runtime(const ExperimentOptions& options) {
  const DatasetBundle bundle = make_datasets(options);
  const std::vector<double> added_latencies = {0.0, 0.5, 1.0, 1.5,
                                               2.0, 2.5, 3.0};

  // Per (algorithm, dataset): one DRAM baseline plus seven CXL latency
  // points, all independent: one batch of 48 runs through the pool.
  std::vector<SweepJob> jobs;
  for (const Algorithm algorithm : {Algorithm::kBfs, Algorithm::kSssp}) {
    for (const auto& entry : bundle.entries) {
      jobs.push_back(make_job(entry.graph, algorithm,
                              BackendKind::kHostDram, options));
      for (const double added : added_latencies) {
        RunRequest req;
        req.cxl_added_latency = util::ps_from_us(added);
        jobs.push_back(make_job(entry.graph, algorithm, BackendKind::kCxl,
                                options, req));
      }
    }
  }
  const std::vector<RunReport> reports =
      run_sweep(table4_system(), options, jobs);

  TablePrinter table({"Algorithm", "Dataset", "Added latency [us]",
                      "Observed latency [us]", "Runtime [ms]",
                      "Normalized vs DRAM"});
  std::size_t i = 0;
  for (const Algorithm algorithm : {Algorithm::kBfs, Algorithm::kSssp}) {
    for (const auto& entry : bundle.entries) {
      const RunReport& dram = reports[i++];
      table.add_row({to_string(algorithm), entry.spec.paper_name, "DRAM",
                     fmt(dram.observed_read_latency_us, 2),
                     fmt(dram.runtime_sec * 1e3, 3), "1.00"});
      for (const double added : added_latencies) {
        const RunReport& r = reports[i++];
        table.add_row({to_string(algorithm), entry.spec.paper_name,
                       fmt(added, 1), fmt(r.observed_read_latency_us, 2),
                       fmt(r.runtime_sec * 1e3, 3),
                       fmt(r.runtime_sec / dram.runtime_sec, 2)});
      }
    }
  }
  return table;
}

TablePrinter sec34_requirements() {
  TablePrinter table({"Case", "W [MB/s]", "N_max", "d [B]",
                      "S required [MIOPS]", "L allowed [us]"});
  for (const auto& c : analysis::paper_requirement_cases()) {
    table.add_row({c.label, fmt(c.bandwidth_mbps, 0),
                   std::to_string(c.n_max), fmt(c.transfer_bytes, 1),
                   fmt(c.required_miops, 2), fmt(c.allowable_latency_us, 2)});
  }
  return table;
}

}  // namespace cxlgraph::core
