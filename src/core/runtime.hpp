#pragma once
/// \file runtime.hpp
/// ExternalGraphRuntime — the library's main entry point.
///
/// Give it a system configuration, a graph, an algorithm, and an external
/// memory backend; it runs the real traversal on the CPU, replays the
/// resulting access trace through the modeled GPU + interconnect + device
/// stack, and reports runtime, throughput, RAF, and latency statistics.
///
///   core::ExternalGraphRuntime rt(core::table4_system());
///   core::RunRequest req;
///   req.algorithm = core::Algorithm::kBfs;
///   req.backend = core::BackendKind::kCxl;
///   req.cxl_added_latency = util::ps_from_us(1.0);
///   core::RunReport report = rt.run(graph, req);

#include <optional>
#include <string>

#include "algo/trace.hpp"
#include "core/system_config.hpp"
#include "gpusim/pointer_chase.hpp"
#include "graph/csr.hpp"

namespace cxlgraph::obs {
class Telemetry;
}

namespace cxlgraph::core {

struct RunRequest {
  Algorithm algorithm = Algorithm::kBfs;
  BackendKind backend = BackendKind::kHostDram;
  /// Traversal source; defaults to a seeded pick of a non-isolated vertex.
  std::optional<graph::VertexId> source;
  std::uint64_t source_seed = 1;

  /// Sweep knobs (each overrides the SystemConfig default when set).
  std::optional<util::SimTime> cxl_added_latency;
  std::optional<std::uint32_t> alignment;   // EMOGI / XLFDD / BaM line size
  std::optional<std::uint64_t> cache_bytes; // BaM / UVM capacity
};

struct RunReport {
  // Identification.
  std::string algorithm;
  std::string backend;
  std::string access_method;
  graph::VertexId source = 0;

  // Headline numbers.
  double runtime_sec = 0.0;        // simulated graph-processing time (t)
  double throughput_mbps = 0.0;    // achieved T = D / t
  double raf = 0.0;                // D / E
  double avg_transfer_bytes = 0.0; // achieved d

  // Volumes.
  std::uint64_t used_bytes = 0;     // E
  std::uint64_t fetched_bytes = 0;  // D
  std::uint64_t transactions = 0;
  std::uint64_t steps = 0;

  // Link-level observations (memory path only where applicable).
  double observed_read_latency_us = 0.0;
  double avg_outstanding_reads = 0.0;
  /// Active-transfer time per full-duplex link half, in simulated seconds.
  /// Utilization = busy / runtime per direction; the halves are reported
  /// separately because they saturate independently.
  double link_return_busy_sec = 0.0;
  double link_upstream_busy_sec = 0.0;

  // Write-side numbers (Sec.-5 extension; zero for read-only workloads).
  std::uint64_t written_bytes = 0;
  std::uint64_t write_transactions = 0;
  std::uint64_t rmw_reads = 0;

  // Workload facts.
  std::uint64_t frontier_vertices = 0;  // total sublist reads
  std::uint64_t graph_edges = 0;
};

/// run_trace's result: the usual report plus per-step (superstep) wall
/// times and byte counts. ClusterRuntime composes barrier-synchronized
/// shard timelines from the durations; the serving layer (serve::
/// QueryServer) additionally needs the per-step fetched bytes so it can
/// charge interleaved queries against the shared link at superstep
/// granularity — and prove the per-query bytes it accounts sum exactly to
/// what the stack fetched. step_durations sums to the engine's total time
/// and step_fetched_bytes to the report's fetched_bytes, both exactly.
struct TraceRunResult {
  RunReport report;
  std::vector<util::SimTime> step_durations;
  std::vector<std::uint64_t> step_fetched_bytes;
};

class ExternalGraphRuntime {
 public:
  explicit ExternalGraphRuntime(SystemConfig config);

  /// Runs one workload end to end. Deterministic in (graph, request).
  RunReport run(const graph::CsrGraph& graph, const RunRequest& request);

  /// The contention seam for the serving layer: identical to run() (the
  /// returned report is bit-for-bit the same), but also surfaces the
  /// per-superstep durations and fetched bytes a shared-resource scheduler
  /// interleaves. run() is implemented on top of this.
  TraceRunResult run_profiled(const graph::CsrGraph& graph,
                              const RunRequest& request);

  /// Replays a prepared access trace through a freshly built backend stack.
  /// `edge_list_bytes` is the size of the edge list resident on this
  /// runtime's external memory (cache capacities scale with it); for a
  /// cluster shard that is the shard's slice, not the whole graph. The
  /// report's source and graph_edges fields are left for the caller.
  TraceRunResult run_trace(const algo::AccessTrace& trace,
                           const RunRequest& request,
                           std::uint64_t edge_list_bytes) const;

  /// Runs the traversal only and returns its access trace (no simulation).
  algo::AccessTrace make_trace(const graph::CsrGraph& graph,
                               Algorithm algorithm,
                               graph::VertexId source) const;

  /// Pointer-chase latency (us) as seen from the GPU for a memory-path
  /// backend (host DRAM or CXL), reproducing Fig. 9 bars.
  double measure_latency_us(BackendKind backend,
                            std::optional<util::SimTime> cxl_added_latency =
                                std::nullopt) const;

  /// Same chase, full per-hop distribution (tail percentiles for latency
  /// reports). measure_latency_us is this result's mean.
  gpusim::PointerChaseResult measure_latency(
      BackendKind backend,
      std::optional<util::SimTime> cxl_added_latency = std::nullopt) const;

  const SystemConfig& config() const noexcept { return config_; }

  /// Attaches a telemetry sink (nullptr detaches). When enabled, each
  /// run_trace records per-superstep spans, a live simulator tap with
  /// link/heat/outstanding probes, and device state-model transitions —
  /// all passively: results stay bit-identical to the detached path.
  /// Only for runtimes driven from one thread (the CLI / bench path);
  /// sweep fan-out should leave its per-task runtimes untapped.
  void set_telemetry(obs::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

 private:
  SystemConfig config_;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace cxlgraph::core
