#pragma once
/// \file system_config.hpp
/// Whole-system configuration: which GPU link, which external-memory
/// backends, and all their parameters. Presets reproduce the paper's two
/// testbeds (Tables 3 and 4).

#include <string>

#include "access/bam.hpp"
#include "access/emogi.hpp"
#include "access/uvm.hpp"
#include "access/xlfdd_direct.hpp"
#include "device/cxl_device.hpp"
#include "device/host_dram.hpp"
#include "device/nvme.hpp"
#include "device/pcie.hpp"
#include "device/xlfdd.hpp"
#include "gpusim/engine.hpp"

namespace cxlgraph::core {

/// Which external memory holds the edge list.
enum class BackendKind {
  kHostDram,        ///< local-socket DRAM, EMOGI zero-copy (DRAM 1 / Fig. 8)
  kHostDramRemote,  ///< other-socket DRAM (DRAM 0 / Fig. 8)
  kCxl,             ///< CXL memory pool, EMOGI zero-copy (Sec. 4.2)
  kXlfdd,           ///< low-latency flash array, direct access (Sec. 4.1)
  kBamNvme,         ///< NVMe SSDs behind a BaM software cache
  kUvm,             ///< unified-memory 4 kB paging (extension baseline)
  kTieredDramCxl,   ///< DRAM hot tier + CXL cold tier (extension)
};

enum class Algorithm {
  kBfs,
  kSssp,
  kCc,            ///< connected components (extension)
  kPagerankScan,  ///< one sequential edge-list sweep (extension)
  kBfsDirOpt,     ///< direction-optimizing BFS (extension)
  kSsspDelta,     ///< delta-stepping SSSP (extension)
  kBfsWriteback,  ///< BFS + per-vertex result writes (Sec.-5 extension)
};

std::string to_string(BackendKind kind);
std::string to_string(Algorithm algorithm);

/// Reverse of to_string over every BackendKind / Algorithm; throws
/// std::invalid_argument for unknown names (CLI/bench option parsing).
BackendKind backend_from_name(const std::string& name);
Algorithm algorithm_from_name(const std::string& name);

struct SystemConfig {
  device::PcieGen gpu_link_gen = device::PcieGen::kGen4;
  gpusim::GpuParams gpu;

  device::HostDramParams dram_local;
  device::HostDramParams dram_remote;

  device::CxlDeviceParams cxl;
  unsigned cxl_devices = 5;
  std::uint32_t cxl_interleave_bytes = 4096;

  unsigned xlfdd_drives = device::kXlfddArrayDrives;
  unsigned nvme_drives = device::kNvmeArrayDrives;

  access::EmogiParams emogi;
  access::BamParams bam;
  access::XlfddDirectParams xlfdd;
  access::UvmParams uvm;

  /// BaM cache and EMOGI GPU-cache capacities scale with the edge list, as
  /// the physical capacities are fixed while our graphs are scaled down.
  /// bam: BaM dedicates several GB of a 24 GB GPU to a ~30 GB edge list.
  double bam_cache_fraction = 0.25;
  /// emogi: a 6 MB L2 against a ~30 GB edge list is ~0.02%; keep a floor so
  /// short-range reuse within a frontier is still captured.
  double emogi_cache_fraction = 0.002;
  std::uint64_t emogi_cache_min_bytes = 64ull << 10;
  /// uvm: resident pages bounded by GPU memory (24 GB vs ~30 GB data).
  double uvm_resident_fraction = 0.5;

  /// Tiered backend: fraction of the edge list kept in the DRAM hot tier
  /// (page-rounded range split; pair with degree-sorted reordering so the
  /// prefix holds the hottest sublists).
  double tier_fast_fraction = 0.25;

  /// State-dependent storage service (CXLSSDEval-shaped; state_model.hpp),
  /// applied on top of the XLFDD/NVMe presets by build_stack. The CXL
  /// pool's thermal model lives in `cxl.thermal`. All default OFF so the
  /// default path stays bit-identical to the time-invariant baseline.
  device::ThermalParams storage_thermal;
  device::EnduranceParams storage_endurance;
  device::QdCurveParams storage_qd_curve;

  /// Sec. 5 ("future GPUs may implement the CXL interface"): when true,
  /// CXL runs bypass the CPU translation hop — the link's per-direction
  /// fixed overheads shrink by `direct_cxl_saving` and the socket hop
  /// disappears, lowering the latency the GPU observes.
  bool gpu_direct_cxl = false;
  util::SimTime direct_cxl_saving = util::ps_from_ns(150);
};

/// The Table-3 testbed: PCIe Gen4 x16 GPU link, 16 XLFDDs, 4 NVMe SSDs,
/// host DRAM for the EMOGI baseline.
SystemConfig table3_system();

/// The Table-4 testbed: PCIe Gen3 x16 GPU link (deliberately downgraded,
/// Sec. 4.2.2), 5 CXL memory devices, dual-socket host DRAM.
SystemConfig table4_system();

}  // namespace cxlgraph::core
