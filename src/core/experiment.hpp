#pragma once
/// \file experiment.hpp
/// One driver per paper table/figure (see DESIGN.md's experiment index).
/// Each returns a TablePrinter with the same rows/series the paper reports;
/// the bench binaries print them (and EXPERIMENTS.md records the outcome).
///
/// All drivers are deterministic in (scale, seed).

#include <cstdint>
#include <vector>

#include "core/experiment_runner.hpp"
#include "core/runtime.hpp"
#include "graph/datasets.hpp"
#include "util/table.hpp"

namespace cxlgraph::core {

struct ExperimentOptions {
  /// log2 of the vertex count for generated datasets (the paper uses 27;
  /// the default here keeps single-core runs interactive).
  unsigned scale = 16;
  std::uint64_t seed = 42;
  /// Emit per-run progress via the logger.
  bool verbose = false;
  /// Worker threads for independent sweep configurations (ExperimentRunner
  /// fan-out): 0 = hardware concurrency, 1 = serial. Results are identical
  /// either way; only wall-clock time changes.
  unsigned jobs = 0;
};

/// The three Table-1 datasets generated once (weighted, usable by BFS and
/// SSSP alike).
struct DatasetBundle {
  struct Entry {
    graph::DatasetSpec spec;
    graph::CsrGraph graph;
  };
  std::vector<Entry> entries;
};
DatasetBundle make_datasets(const ExperimentOptions& options);

/// Table 1: dataset inventory (vertices, edges, edge-list size, degrees).
util::TablePrinter table1_datasets(const ExperimentOptions& options);

/// Table 2: BFS frontier size per depth on urand.
util::TablePrinter table2_frontier(const ExperimentOptions& options);

/// Fig. 3: RAF vs alignment (8 B..4 kB) for BFS and SSSP on all datasets.
util::TablePrinter fig3_raf(const ExperimentOptions& options,
                            double cache_fraction = 0.25);

/// Fig. 4: D(d), T(d), and t(d) for BFS/urand under the example external
/// memory (S = 100 MIOPS, L = 16 us) on a Gen4 x16 link.
util::TablePrinter fig4_model(const ExperimentOptions& options,
                              double cache_fraction = 0.25);

/// Fig. 5: XLFDD BFS/urand runtime vs alignment, normalized to EMOGI on
/// host DRAM, with the BaM 4 kB point.
util::TablePrinter fig5_alignment_sweep(const ExperimentOptions& options);

/// Fig. 6: XLFDD(16 B) and BaM(4 kB) normalized runtimes for BFS and SSSP
/// on all three datasets.
util::TablePrinter fig6_runtimes(const ExperimentOptions& options);

/// Fig. 9: pointer-chase latency from the GPU: DRAM 0/1, CXL 0/3 with
/// +0..+3 us added latency.
util::TablePrinter fig9_latency();

/// Fig. 10: CXL prototype throughput and Little's-law outstanding reads vs
/// added latency (CPU-side 64 B random reads).
util::TablePrinter fig10_cxl_throughput();

/// Fig. 11: BFS and SSSP on CXL memory vs added latency (+0..+3 us),
/// normalized to host DRAM, on the Gen3 Table-4 system.
util::TablePrinter fig11_cxl_runtime(const ExperimentOptions& options);

/// Sec. 3.4 / 4.1.1 / 4.2.2: the requirement numbers (S, L bounds).
util::TablePrinter sec34_requirements();

/// Fans a sweep's independent configurations across options.jobs worker
/// threads (ExperimentRunner); reports come back in insertion order,
/// bit-identical to running the jobs serially. With options.verbose, logs
/// one line per run after collection — in insertion order, matching the
/// serial sweep's output.
std::vector<RunReport> run_sweep(const SystemConfig& config,
                                 const ExperimentOptions& options,
                                 const std::vector<SweepJob>& jobs);

}  // namespace cxlgraph::core
