#pragma once
/// \file cluster_runtime.hpp
/// Sharded multi-GPU scale-out simulation.
///
/// ClusterRuntime partitions a graph across N shards (src/partition), runs
/// one full ExternalGraphRuntime stack — GPU engine, link, devices — per
/// shard, and models the bulk inter-shard frontier exchange that a BSP
/// (superstep-synchronized) cluster performs between BFS levels or
/// PageRank iterations. Per-shard replays are independent and fan out
/// across ExperimentRunner workers; the cluster timeline is then composed
/// superstep by superstep:
///
///   runtime = sum_k [ max_over_shards(step_time[s][k]) + exchange_time(k) ]
///
/// where exchange_time charges the deduplicated remote-frontier bytes
/// against the inter-shard link bandwidth plus a fixed all-to-all barrier
/// latency. With one shard no exchange is charged and the result is
/// bit-identical to ExternalGraphRuntime::run.
///
///   core::ClusterRuntime cluster(core::table3_system());
///   core::ClusterRequest req;
///   req.run.algorithm = core::Algorithm::kBfs;
///   req.run.backend = core::BackendKind::kCxl;
///   req.num_shards = 8;
///   req.strategy = partition::Strategy::kDegreeBalanced;
///   core::ClusterReport report = cluster.run(graph, req);

#include <string>
#include <vector>

#include "core/experiment_runner.hpp"
#include "core/runtime.hpp"
#include "partition/partition.hpp"

namespace cxlgraph::core {

struct ClusterRequest {
  /// The per-shard workload: algorithm, backend, and sweep knobs.
  RunRequest run;
  std::uint32_t num_shards = 1;
  partition::Strategy strategy = partition::Strategy::kVertexRange;
  /// Perturbs the kHashEdge placement only.
  std::uint64_t partition_seed = 0;
  /// Per-shard SystemConfig overrides for heterogeneous clusters; empty
  /// uses the runtime's config everywhere, otherwise size must equal
  /// num_shards.
  std::vector<SystemConfig> shard_configs;
  /// Inter-shard (GPU-to-GPU) link bandwidth the bulk exchange is charged
  /// against; 0 uses the system's GPU link bandwidth.
  double exchange_bandwidth_mbps = 0.0;
  /// Fixed all-to-all synchronization cost per exchange phase.
  util::SimTime exchange_latency = util::ps_from_us(5.0);
};

struct ClusterReport {
  std::string algorithm;
  std::string backend;
  std::string access_method;
  std::string partitioner;
  std::uint32_t num_shards = 1;
  graph::VertexId source = 0;

  /// Cluster makespan: per-superstep slowest shard plus exchange phases.
  double runtime_sec = 0.0;
  double compute_sec = 0.0;
  double exchange_sec = 0.0;
  std::uint64_t exchange_bytes = 0;
  /// Deduplicated (shard, remote vertex) notifications.
  std::uint64_t exchange_messages = 0;
  std::uint64_t supersteps = 0;

  /// Sums over shards (the cluster-wide D / E / transaction counts).
  std::uint64_t fetched_bytes = 0;
  std::uint64_t used_bytes = 0;
  std::uint64_t transactions = 0;

  /// Slowest shard's own total compute and the max/avg compute ratio —
  /// the partitioner-quality numbers a strong-scaling study reads.
  double max_shard_compute_sec = 0.0;
  double shard_compute_imbalance = 1.0;

  partition::CutStats cut;
  std::vector<RunReport> shard_reports;
};

class ClusterRuntime {
 public:
  /// `jobs` bounds the per-shard fan-out (ExperimentRunner semantics:
  /// 0 = hardware concurrency, 1 = serial; results identical either way).
  explicit ClusterRuntime(SystemConfig config, unsigned jobs = 0);

  /// Partitions, replays every shard, and composes the cluster timeline.
  /// Supports kBfs, kSssp, kCc, and kPagerankScan; throws
  /// std::invalid_argument for algorithms without a superstep
  /// decomposition. Deterministic in (graph, request).
  ClusterReport run(const graph::CsrGraph& graph,
                    const ClusterRequest& request);

  const SystemConfig& config() const noexcept { return runner_.config(); }

 private:
  /// Shard replays fan out here; the pool is lazy and reused across runs.
  ExperimentRunner runner_;
};

}  // namespace cxlgraph::core
