#pragma once
/// \file cluster_runtime.hpp
/// Sharded multi-GPU scale-out simulation.
///
/// ClusterRuntime partitions a graph across N shards (src/partition), runs
/// one full ExternalGraphRuntime stack — GPU engine, link, devices — per
/// shard, and models the inter-shard exchange that a BSP
/// (superstep-synchronized) cluster performs between BFS levels, PageRank
/// iterations, direction-optimizing supersteps, or delta-stepping
/// relaxation phases. Per-shard replays are independent and fan out
/// across ExperimentRunner workers; the cluster timeline is then composed
/// superstep by superstep:
///
///   runtime = sum_k [ max_over_shards(step_time[s][k]) + exchange_time(k) ]
///
/// The exchange model is asymmetric: every deduplicated message is
/// attributed to its (source shard, destination owner) pair, and a phase
/// costs the fixed all-to-all barrier latency plus the *slowest ingress* —
/// max over destination shards of the bytes converging on that shard —
/// over the inter-shard link bandwidth. A partitioner that concentrates
/// cut edges on one owner therefore pays more than one that spreads the
/// same total traffic evenly, which is exactly the effect the per-pair cut
/// matrix (partition::CutStats) measures statically. With one shard no
/// exchange is charged and the result is bit-identical to
/// ExternalGraphRuntime::run.
///
/// Superstep decompositions per algorithm:
///  * kBfs / kSssp / kCc — one superstep per frontier; shards read the
///    local sublists of frontier vertices and notify owners of remotely
///    discovered next-frontier vertices (one vertex-ID word each).
///  * kPagerankScan — one superstep sweeping each shard's local edge list;
///    ghost-rank updates flow to owners afterwards.
///  * kBfsDirOpt — one superstep per level; every shard votes push vs pull
///    from its local frontier stats (algo::DirectionVote) and the cluster
///    takes the aggregate decision through the same algo::DirectionDecider
///    the single runtime uses. Since shard votes sum exactly to the
///    whole-graph stats, the decision sequence is shard-count invariant.
///    Pull supersteps scan each shard's unvisited local sublists with the
///    first-found-parent early exit applied per shard.
///  * kSsspDelta — one superstep per relaxation phase, barrier-delimited
///    along bucket epochs (algo::DeltaSteppingResult::phase_bucket);
///    shards exchange relaxation requests (target ID + candidate
///    distance) for every scanned cut edge with a non-local target,
///    deduplicated per (phase, shard, target).
///
///   core::ClusterRuntime cluster(core::table3_system());
///   core::ClusterRequest req;
///   req.run.algorithm = core::Algorithm::kBfs;
///   req.run.backend = core::BackendKind::kCxl;
///   req.num_shards = 8;
///   req.strategy = partition::Strategy::kDegreeBalanced;
///   core::ClusterReport report = cluster.run(graph, req);

#include <string>
#include <vector>

#include "core/experiment_runner.hpp"
#include "core/runtime.hpp"
#include "partition/partition.hpp"

namespace cxlgraph::core {

/// True when `algorithm` has a superstep decomposition ClusterRuntime can
/// shard: kBfs, kSssp, kCc, kPagerankScan, kBfsDirOpt, and kSsspDelta.
/// (kBfsWriteback's write phase has no decomposition yet.) Sweep drivers
/// check this up front to fail fast instead of aborting mid-sweep.
bool cluster_supports(Algorithm algorithm) noexcept;

struct ClusterRequest {
  /// The per-shard workload: algorithm, backend, and sweep knobs.
  RunRequest run;
  std::uint32_t num_shards = 1;
  partition::Strategy strategy = partition::Strategy::kVertexRange;
  /// Perturbs the kHashEdge placement only.
  std::uint64_t partition_seed = 0;
  /// Partitioner-aware local relabeling applied per shard after the cut is
  /// fixed (degree-sort within each shard's subgraph). Changes layout and
  /// therefore per-shard replay cost, never the cut or the exchange.
  partition::ShardReorder reorder = partition::ShardReorder::kNone;
  /// Per-shard SystemConfig overrides for heterogeneous clusters; empty
  /// uses the runtime's config everywhere, otherwise size must equal
  /// num_shards.
  std::vector<SystemConfig> shard_configs;
  /// Inter-shard (GPU-to-GPU) link bandwidth the bulk exchange is charged
  /// against; 0 uses the system's GPU link bandwidth.
  double exchange_bandwidth_mbps = 0.0;
  /// Fixed all-to-all synchronization cost per exchange phase.
  util::SimTime exchange_latency = util::ps_from_us(5.0);
};

struct ClusterReport {
  std::string algorithm;
  std::string backend;
  std::string access_method;
  std::string partitioner;
  std::uint32_t num_shards = 1;
  graph::VertexId source = 0;

  /// Cluster makespan: per-superstep slowest shard plus exchange phases.
  double runtime_sec = 0.0;
  double compute_sec = 0.0;
  double exchange_sec = 0.0;
  std::uint64_t exchange_bytes = 0;
  /// Deduplicated (shard, remote vertex) notifications.
  std::uint64_t exchange_messages = 0;
  std::uint64_t supersteps = 0;

  /// Exchange traffic per ordered shard pair, row-major
  /// [from * num_shards + to], summed over all exchange phases. The grand
  /// total equals exchange_bytes; diagonal entries are zero.
  std::vector<std::uint64_t> pair_exchange_bytes;
  /// How lopsided the exchange phases were: the per-phase max-ingress
  /// bytes (what the asymmetric model charges) summed over phases,
  /// relative to the perfectly balanced all-to-all (total bytes / shards
  /// per phase). 1.0 = every destination absorbs an equal share; higher
  /// means the cut concentrates traffic on few owners.
  double exchange_ingress_skew = 1.0;

  /// Per-superstep profile, the serving layer's contention seam: the
  /// slowest shard's wall time per kept superstep, the inter-shard
  /// exchange cost per phase (phase j follows kept superstep j), and the
  /// cluster-wide fetched bytes per kept superstep (summed over shards —
  /// superstep_fetched_bytes sums exactly to fetched_bytes). At one shard
  /// these are the single stack's own step durations/bytes and
  /// exchange_phase_ps is empty.
  std::vector<util::SimTime> superstep_compute_ps;
  std::vector<util::SimTime> exchange_phase_ps;
  std::vector<std::uint64_t> superstep_fetched_bytes;

  /// kBfsDirOpt only: the cluster's aggregate direction per kept
  /// superstep (1 = bottom-up/pull, 0 = top-down/push).
  std::vector<std::uint8_t> superstep_bottom_up;
  /// kSsspDelta only: the bucket key whose epoch each kept superstep
  /// (relaxation phase) ran under, and the total bucket epochs processed.
  std::vector<std::uint64_t> superstep_bucket;
  std::uint64_t bucket_epochs = 0;

  /// Sums over shards (the cluster-wide D / E / transaction counts).
  std::uint64_t fetched_bytes = 0;
  std::uint64_t used_bytes = 0;
  std::uint64_t transactions = 0;

  /// Slowest shard's own total compute and the max/avg compute ratio —
  /// the partitioner-quality numbers a strong-scaling study reads.
  double max_shard_compute_sec = 0.0;
  double shard_compute_imbalance = 1.0;

  partition::CutStats cut;
  std::vector<RunReport> shard_reports;
};

class ClusterRuntime {
 public:
  /// `jobs` bounds the per-shard fan-out (ExperimentRunner semantics:
  /// 0 = hardware concurrency, 1 = serial; results identical either way).
  explicit ClusterRuntime(SystemConfig config, unsigned jobs = 0);

  /// Partitions, replays every shard, and composes the cluster timeline.
  /// Supports every algorithm cluster_supports() accepts; throws
  /// std::invalid_argument otherwise. Deterministic in (graph, request).
  ClusterReport run(const graph::CsrGraph& graph,
                    const ClusterRequest& request);

  const SystemConfig& config() const noexcept { return runner_.config(); }

  /// Attaches a telemetry sink (nullptr detaches). The cluster timeline —
  /// barrier-synchronized supersteps and exchange phases — is emitted
  /// post-hoc from the composed report, after the parallel shard replays
  /// have joined, so the fan-out itself stays untapped and thread-safe.
  void set_telemetry(obs::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

 private:
  /// Shard replays fan out here; the pool is lazy and reused across runs.
  ExperimentRunner runner_;
  obs::Telemetry* telemetry_ = nullptr;
};

}  // namespace cxlgraph::core
