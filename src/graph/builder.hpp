#pragma once
/// \file builder.hpp
/// Builds CSR graphs from edge lists with the usual cleanup options.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace cxlgraph::graph {

struct Edge {
  VertexId src;
  VertexId dst;
  Weight weight = 1;

  friend bool operator==(const Edge&, const Edge&) = default;
};

using EdgeList = std::vector<Edge>;

struct BuildOptions {
  /// Add the reverse of every edge (the paper's traversal graphs are
  /// effectively undirected).
  bool symmetrize = false;
  /// Drop (u, u) edges.
  bool remove_self_loops = false;
  /// Collapse parallel edges, keeping the smallest weight.
  bool dedup = false;
  /// Sort each vertex's neighbor sublist by target ID.
  bool sort_neighbors = true;
};

/// Builds a CSR graph over vertices [0, num_vertices). Edges referencing
/// vertices >= num_vertices throw std::invalid_argument.
CsrGraph build_csr(std::uint64_t num_vertices, EdgeList edges,
                   const BuildOptions& options = {});

/// Convenience for tests: builds from (src, dst) pairs, unweighted.
CsrGraph build_csr_from_pairs(
    std::uint64_t num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& pairs,
    const BuildOptions& options = {});

}  // namespace cxlgraph::graph
