#pragma once
/// \file csr.hpp
/// Compressed Sparse Row graph representation (paper Section 2.1, Fig. 1).
///
/// The graph is a vertex list (row offsets) plus an edge list (neighbor
/// vertex IDs). Vertex IDs are 8 bytes, matching the paper's datasets
/// (Table 1: "8 bytes per vertex ID"). The contiguous run of a vertex's
/// neighbors in the edge list is its *edge sublist*; external-memory methods
/// fetch sublists, and sublist byte ranges are what the access trace records.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cxlgraph::graph {

using VertexId = std::uint64_t;
using EdgeIndex = std::uint64_t;
using Weight = std::uint32_t;

/// Bytes per vertex ID in the on-device edge list (paper Table 1).
inline constexpr std::uint64_t kBytesPerEdge = 8;

/// Immutable CSR graph. Construct via GraphBuilder or the generators.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Takes ownership of prebuilt arrays. offsets.size() must be
  /// num_vertices + 1, offsets.front() == 0, offsets.back() == edges.size(),
  /// and offsets must be non-decreasing. weights may be empty (unweighted)
  /// or have one entry per edge.
  CsrGraph(std::vector<EdgeIndex> offsets, std::vector<VertexId> edges,
           std::vector<Weight> weights = {});

  std::uint64_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::uint64_t num_edges() const noexcept { return edges_.size(); }
  bool weighted() const noexcept { return !weights_.empty(); }

  std::uint64_t degree(VertexId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  std::span<const VertexId> neighbors(VertexId v) const noexcept {
    return {edges_.data() + offsets_[v], degree(v)};
  }

  std::span<const Weight> weights_of(VertexId v) const noexcept {
    return {weights_.data() + offsets_[v], degree(v)};
  }

  /// Byte offset of v's edge sublist within the external-memory edge list.
  std::uint64_t sublist_byte_offset(VertexId v) const noexcept {
    return offsets_[v] * kBytesPerEdge;
  }

  /// Byte length of v's edge sublist.
  std::uint64_t sublist_bytes(VertexId v) const noexcept {
    return degree(v) * kBytesPerEdge;
  }

  /// Total edge-list size in bytes (the data held on external memory).
  std::uint64_t edge_list_bytes() const noexcept {
    return num_edges() * kBytesPerEdge;
  }

  const std::vector<EdgeIndex>& offsets() const noexcept { return offsets_; }
  const std::vector<VertexId>& edges() const noexcept { return edges_; }
  const std::vector<Weight>& weights() const noexcept { return weights_; }

  /// Verifies structural invariants; returns an empty string when valid,
  /// otherwise a description of the first violation found.
  std::string validate() const;

 private:
  std::vector<EdgeIndex> offsets_;  // size n+1
  std::vector<VertexId> edges_;
  std::vector<Weight> weights_;  // empty or size num_edges()
};

/// Degree statistics in the form the paper's Table 1 reports.
struct DegreeStats {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t edge_list_bytes = 0;
  std::uint64_t zero_degree_vertices = 0;
  /// Average degree over vertices with degree > 0 (Table 1 convention).
  double avg_degree_nonzero = 0.0;
  /// Average sublist size in bytes over vertices with degree > 0.
  double avg_sublist_bytes = 0.0;
  std::uint64_t max_degree = 0;
};

DegreeStats degree_stats(const CsrGraph& graph);

}  // namespace cxlgraph::graph
