#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace cxlgraph::graph {

namespace {

constexpr char kMagic[4] = {'C', 'X', 'L', 'G'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("graph binary: truncated stream");
  return value;
}

template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& v) {
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& is, std::size_t count) {
  std::vector<T> v(count);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!is) throw std::runtime_error("graph binary: truncated array");
  return v;
}

}  // namespace

void save_binary(const CsrGraph& graph, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, graph.num_vertices());
  write_pod(os, graph.num_edges());
  write_pod(os, static_cast<std::uint8_t>(graph.weighted() ? 1 : 0));
  write_vector(os, graph.offsets());
  write_vector(os, graph.edges());
  if (graph.weighted()) write_vector(os, graph.weights());
  if (!os) throw std::runtime_error("graph binary: write failed");
}

CsrGraph load_binary(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("graph binary: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("graph binary: unsupported version " +
                             std::to_string(version));
  }
  const auto n = read_pod<std::uint64_t>(is);
  const auto m = read_pod<std::uint64_t>(is);
  const auto weighted = read_pod<std::uint8_t>(is);
  auto offsets = read_vector<EdgeIndex>(is, n + 1);
  auto edges = read_vector<VertexId>(is, m);
  std::vector<Weight> weights;
  if (weighted != 0) weights = read_vector<Weight>(is, m);
  return CsrGraph(std::move(offsets), std::move(edges), std::move(weights));
}

void save_binary_file(const CsrGraph& graph, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_binary(graph, os);
}

CsrGraph load_binary_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_binary(is);
}

void save_edge_list(const CsrGraph& graph, std::ostream& os) {
  os << "# cxlgraph edge list: " << graph.num_vertices() << " vertices, "
     << graph.num_edges() << " edges\n";
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto neighbors = graph.neighbors(v);
    const auto weights =
        graph.weighted() ? graph.weights_of(v) : std::span<const Weight>{};
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      os << v << ' ' << neighbors[i];
      if (!weights.empty()) os << ' ' << weights[i];
      os << '\n';
    }
  }
}

CsrGraph load_edge_list(std::istream& is, bool symmetrize) {
  EdgeList edges;
  VertexId max_vertex = 0;
  bool any_weight = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    Edge e;
    if (!(ls >> e.src >> e.dst)) {
      throw std::runtime_error("edge list: malformed line: " + line);
    }
    if (ls >> e.weight) {
      any_weight = true;
    } else {
      e.weight = 1;
    }
    max_vertex = std::max({max_vertex, e.src, e.dst});
    edges.push_back(e);
  }
  if (!any_weight) {
    for (Edge& e : edges) e.weight = 1;
  }
  BuildOptions opts;
  opts.symmetrize = symmetrize;
  const std::uint64_t n = edges.empty() ? 0 : max_vertex + 1;
  return build_csr(n, std::move(edges), opts);
}

}  // namespace cxlgraph::graph
