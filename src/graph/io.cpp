#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace cxlgraph::graph {

namespace {

constexpr char kMagic[4] = {'C', 'X', 'L', 'G'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!is) throw std::runtime_error("graph binary: truncated stream");
  return value;
}

template <typename T>
void write_vector(std::ostream& os, const std::vector<T>& v) {
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(std::istream& is, std::size_t count) {
  std::vector<T> v(count);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!is) throw std::runtime_error("graph binary: truncated array");
  return v;
}

}  // namespace

void save_binary(const CsrGraph& graph, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  write_pod(os, kVersion);
  write_pod(os, graph.num_vertices());
  write_pod(os, graph.num_edges());
  write_pod(os, static_cast<std::uint8_t>(graph.weighted() ? 1 : 0));
  write_vector(os, graph.offsets());
  write_vector(os, graph.edges());
  if (graph.weighted()) write_vector(os, graph.weights());
  if (!os) throw std::runtime_error("graph binary: write failed");
}

CsrGraph load_binary(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("graph binary: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("graph binary: unsupported version " +
                             std::to_string(version));
  }
  const auto n = read_pod<std::uint64_t>(is);
  const auto m = read_pod<std::uint64_t>(is);
  const auto weighted = read_pod<std::uint8_t>(is);
  if (weighted > 1) {
    throw std::runtime_error("graph binary: corrupt weighted flag " +
                             std::to_string(weighted));
  }
  // Validate the header's counts against the bytes actually present
  // before allocating — a corrupt count must not turn into a
  // multi-gigabyte allocation or a garbage graph. The bound keeps the
  // `needed` sum below 2^61 so the size arithmetic cannot wrap (2^56
  // vertices/edges is far past any representable graph anyway).
  constexpr std::uint64_t kMaxCount = 1ull << 56;
  if (n > kMaxCount || m > kMaxCount) {
    throw std::runtime_error("graph binary: implausible counts (" +
                             std::to_string(n) + " vertices, " +
                             std::to_string(m) + " edges)");
  }
  const std::uint64_t needed = (n + 1) * sizeof(EdgeIndex) +
                               m * sizeof(VertexId) +
                               (weighted != 0 ? m * sizeof(Weight) : 0);
  const std::istream::pos_type body_start = is.tellg();
  if (body_start != std::istream::pos_type(-1)) {
    is.seekg(0, std::ios::end);
    const std::istream::pos_type stream_end = is.tellg();
    is.seekg(body_start);
    const auto available =
        static_cast<std::uint64_t>(stream_end - body_start);
    if (available < needed) {
      throw std::runtime_error(
          "graph binary: truncated stream (header promises " +
          std::to_string(needed) + " bytes, " + std::to_string(available) +
          " remain)");
    }
  }
  auto offsets = read_vector<EdgeIndex>(is, n + 1);
  auto edges = read_vector<VertexId>(is, m);
  std::vector<Weight> weights;
  if (weighted != 0) weights = read_vector<Weight>(is, m);
  try {
    return CsrGraph(std::move(offsets), std::move(edges),
                    std::move(weights));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("graph binary: corrupt structure: ") +
                             e.what());
  }
}

void save_binary_file(const CsrGraph& graph, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_binary(graph, os);
}

CsrGraph load_binary_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_binary(is);
}

void save_edge_list(const CsrGraph& graph, std::ostream& os) {
  os << "# cxlgraph edge list: " << graph.num_vertices() << " vertices, "
     << graph.num_edges() << " edges\n";
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto neighbors = graph.neighbors(v);
    const auto weights =
        graph.weighted() ? graph.weights_of(v) : std::span<const Weight>{};
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      os << v << ' ' << neighbors[i];
      if (!weights.empty()) os << ' ' << weights[i];
      os << '\n';
    }
  }
}

CsrGraph load_edge_list(std::istream& is, bool symmetrize) {
  EdgeList edges;
  VertexId max_vertex = 0;
  bool any_weight = false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    Edge e;
    if (!(ls >> e.src >> e.dst)) {
      throw std::runtime_error("edge list: malformed line: " + line);
    }
    if (ls >> e.weight) {
      any_weight = true;
    } else {
      e.weight = 1;
    }
    max_vertex = std::max({max_vertex, e.src, e.dst});
    edges.push_back(e);
  }
  if (!any_weight) {
    for (Edge& e : edges) e.weight = 1;
  }
  BuildOptions opts;
  opts.symmetrize = symmetrize;
  const std::uint64_t n = edges.empty() ? 0 : max_vertex + 1;
  return build_csr(n, std::move(edges), opts);
}

}  // namespace cxlgraph::graph
