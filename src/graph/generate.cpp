#include "graph/generate.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "graph/builder.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cxlgraph::graph {

namespace {

using util::Xoshiro256;

BuildOptions clean_options(bool clean) {
  BuildOptions opts;
  opts.symmetrize = clean;
  opts.remove_self_loops = clean;
  opts.dedup = clean;
  return opts;
}

void assign_weight(Edge& e, Xoshiro256& rng, std::uint32_t max_weight) {
  e.weight = max_weight == 0
                 ? 1
                 : static_cast<Weight>(rng.next_in(1, max_weight));
}

/// Seed for chunk `chunk` of the sampling loop: one SplitMix64 step over a
/// golden-ratio spread keeps neighboring chunks' Xoshiro states decorrelated.
std::uint64_t chunk_seed(std::uint64_t seed, std::uint64_t chunk) {
  util::SplitMix64 sm(seed ^ ((chunk + 1) * 0x9e3779b97f4a7c15ULL));
  return sm.next();
}

/// Runs fn(begin, end) over [0, n) under GeneratorOptions::jobs semantics:
/// 1 = serial on the calling thread, 0 = the shared default pool, N > 1 =
/// a scoped N-thread pool. Work splitting never changes the output — the
/// callers key their RNG streams to fixed positions, not to the split.
void run_with_jobs(unsigned jobs, std::uint64_t n,
                   const std::function<void(std::uint64_t, std::uint64_t)>& fn) {
  if (jobs == 1 || n <= 1) {
    fn(0, n);
  } else if (jobs == 0) {
    util::parallel_for(util::default_pool(), n, fn);
  } else {
    util::ThreadPool pool(jobs);
    util::parallel_for(pool, n, fn);
  }
}

/// Fills `edges` (pre-sized to the edge count) in kGeneratorChunkEdges
/// chunks; `sample(rng, i, edge)` produces edge i from the chunk's RNG.
/// The chunk grid is fixed, so output is identical for any `jobs`.
template <typename SampleFn>
void sample_edges_chunked(EdgeList& edges, const GeneratorOptions& options,
                          const SampleFn& sample) {
  const std::uint64_t num_edges = edges.size();
  const std::uint64_t chunks =
      (num_edges + kGeneratorChunkEdges - 1) / kGeneratorChunkEdges;
  run_with_jobs(options.jobs, chunks,
                [&](std::uint64_t chunk_begin, std::uint64_t chunk_end) {
                  for (std::uint64_t c = chunk_begin; c < chunk_end; ++c) {
                    Xoshiro256 rng(chunk_seed(options.seed, c));
                    const std::uint64_t begin = c * kGeneratorChunkEdges;
                    const std::uint64_t end =
                        std::min(num_edges, begin + kGeneratorChunkEdges);
                    for (std::uint64_t i = begin; i < end; ++i) {
                      sample(rng, edges[i]);
                    }
                  }
                });
}

}  // namespace

CsrGraph generate_uniform(std::uint64_t num_vertices, double avg_degree,
                          const GeneratorOptions& options) {
  if (num_vertices == 0) return CsrGraph({0}, {});
  if (avg_degree < 0) throw std::invalid_argument("negative avg_degree");
  // Undirected edges; symmetrization doubles directed degree back up.
  const auto num_edges = static_cast<std::uint64_t>(
      static_cast<double>(num_vertices) * avg_degree / 2.0);
  EdgeList edges(num_edges);
  sample_edges_chunked(edges, options, [&](Xoshiro256& rng, Edge& e) {
    e.src = rng.next_below(num_vertices);
    e.dst = rng.next_below(num_vertices);
    assign_weight(e, rng, options.max_weight);
  });
  return build_csr(num_vertices, std::move(edges),
                   clean_options(options.clean));
}

CsrGraph generate_kronecker(unsigned scale, double edge_factor,
                            const GeneratorOptions& options) {
  if (scale >= 48) throw std::invalid_argument("kronecker scale too large");
  const std::uint64_t num_vertices = std::uint64_t{1} << scale;
  const auto num_edges = static_cast<std::uint64_t>(
      static_cast<double>(num_vertices) * edge_factor);
  // Graph500 R-MAT probabilities.
  constexpr double kA = 0.57;
  constexpr double kB = 0.19;
  constexpr double kC = 0.19;

  EdgeList edges(num_edges);
  sample_edges_chunked(edges, options, [&](Xoshiro256& rng, Edge& e) {
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      // Quadrant selection: A = (0,0), B = (0,1), C = (1,0), D = (1,1).
      const bool src_bit = r >= kA + kB;
      const bool dst_bit = (r >= kA && r < kA + kB) || r >= kA + kB + kC;
      src = (src << 1) | static_cast<std::uint64_t>(src_bit);
      dst = (dst << 1) | static_cast<std::uint64_t>(dst_bit);
    }
    e.src = src;
    e.dst = dst;
    assign_weight(e, rng, options.max_weight);
  });
  return build_csr(num_vertices, std::move(edges),
                   clean_options(options.clean));
}

CsrGraph generate_power_law(std::uint64_t num_vertices, double avg_degree,
                            double exponent,
                            const GeneratorOptions& options) {
  if (num_vertices == 0) return CsrGraph({0}, {});
  if (exponent <= 0) throw std::invalid_argument("exponent must be > 0");

  // Chung–Lu: vertex i gets expected weight w_i ∝ (i+1)^(-1/(exponent-1)).
  // We then sample edges by picking endpoints proportionally to w via the
  // inverse-CDF of the cumulative weights. The pow() evaluations dominate
  // setup, so they fan out; the running sum stays serial (it is a strict
  // prefix dependence and cheap).
  const double beta = 1.0 / (exponent - 1.0);
  std::vector<double> weight(num_vertices, 0.0);
  run_with_jobs(options.jobs, num_vertices,
                [&](std::uint64_t begin, std::uint64_t end) {
                  for (std::uint64_t i = begin; i < end; ++i) {
                    weight[i] = std::pow(static_cast<double>(i + 1), -beta);
                  }
                });
  std::vector<double> cumulative(num_vertices + 1, 0.0);
  for (std::uint64_t i = 0; i < num_vertices; ++i) {
    cumulative[i + 1] = cumulative[i] + weight[i];
  }
  const double total_weight = cumulative.back();

  const auto num_edges = static_cast<std::uint64_t>(
      static_cast<double>(num_vertices) * avg_degree / 2.0);

  auto sample_vertex = [&](Xoshiro256& rng) -> VertexId {
    const double target = rng.next_double() * total_weight;
    // Binary search on the cumulative weights.
    std::uint64_t lo = 0;
    std::uint64_t hi = num_vertices;
    while (lo + 1 < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (cumulative[mid] <= target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  };

  EdgeList edges(num_edges);
  sample_edges_chunked(edges, options, [&](Xoshiro256& rng, Edge& e) {
    e.src = sample_vertex(rng);
    e.dst = sample_vertex(rng);
    assign_weight(e, rng, options.max_weight);
  });
  return build_csr(num_vertices, std::move(edges),
                   clean_options(options.clean));
}

CsrGraph make_path(std::uint64_t n) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (std::uint64_t i = 0; i + 1 < n; ++i) pairs.emplace_back(i, i + 1);
  BuildOptions opts;
  opts.symmetrize = true;
  return build_csr_from_pairs(n, pairs, opts);
}

CsrGraph make_ring(std::uint64_t n) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (std::uint64_t i = 0; i + 1 < n; ++i) pairs.emplace_back(i, i + 1);
  if (n > 2) pairs.emplace_back(n - 1, 0);
  BuildOptions opts;
  opts.symmetrize = true;
  return build_csr_from_pairs(n, pairs, opts);
}

CsrGraph make_star(std::uint64_t leaves) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (std::uint64_t i = 1; i <= leaves; ++i) pairs.emplace_back(0, i);
  BuildOptions opts;
  opts.symmetrize = true;
  return build_csr_from_pairs(leaves + 1, pairs, opts);
}

CsrGraph make_complete(std::uint64_t n) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  BuildOptions opts;
  opts.symmetrize = true;
  return build_csr_from_pairs(n, pairs, opts);
}

CsrGraph make_grid(std::uint64_t rows, std::uint64_t cols) {
  std::vector<std::pair<VertexId, VertexId>> pairs;
  auto id = [cols](std::uint64_t r, std::uint64_t c) { return r * cols + c; };
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) pairs.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) pairs.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  BuildOptions opts;
  opts.symmetrize = true;
  return build_csr_from_pairs(rows * cols, pairs, opts);
}

}  // namespace cxlgraph::graph
