#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace cxlgraph::graph {

CsrGraph build_csr(std::uint64_t num_vertices, EdgeList edges,
                   const BuildOptions& options) {
  for (const Edge& e : edges) {
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      throw std::invalid_argument("edge endpoint out of range");
    }
  }

  if (options.remove_self_loops) {
    std::erase_if(edges, [](const Edge& e) { return e.src == e.dst; });
  }

  if (options.symmetrize) {
    const std::size_t original = edges.size();
    edges.reserve(original * 2);
    for (std::size_t i = 0; i < original; ++i) {
      const Edge& e = edges[i];
      edges.push_back(Edge{e.dst, e.src, e.weight});
    }
  }

  // Sorting by (src, dst) gives CSR layout, sorted sublists, and makes
  // duplicates adjacent; weight is the tiebreaker so dedup keeps the min.
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });

  if (options.dedup) {
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& a, const Edge& b) {
                              return a.src == b.src && a.dst == b.dst;
                            }),
                edges.end());
  }

  std::vector<EdgeIndex> offsets(num_vertices + 1, 0);
  for (const Edge& e : edges) ++offsets[e.src + 1];
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    offsets[i] += offsets[i - 1];
  }

  std::vector<VertexId> targets(edges.size());
  std::vector<Weight> weights(edges.size());
  bool any_nontrivial_weight = false;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    targets[i] = edges[i].dst;
    weights[i] = edges[i].weight;
    any_nontrivial_weight |= edges[i].weight != 1;
  }

  if (!options.sort_neighbors) {
    // Edges were globally sorted above for CSR layout; nothing to undo —
    // sorted sublists are a superset of the unsorted contract.
  }

  if (!any_nontrivial_weight) weights.clear();
  return CsrGraph(std::move(offsets), std::move(targets), std::move(weights));
}

CsrGraph build_csr_from_pairs(
    std::uint64_t num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& pairs,
    const BuildOptions& options) {
  EdgeList edges;
  edges.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) edges.push_back(Edge{src, dst, 1});
  return build_csr(num_vertices, std::move(edges), options);
}

}  // namespace cxlgraph::graph
