#pragma once
/// \file io.hpp
/// Graph serialization: a compact binary CSR container plus a text edge-list
/// reader/writer for interoperability with common graph tooling.

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace cxlgraph::graph {

/// Binary container layout (little-endian):
///   magic "CXLG" | u32 version | u64 n | u64 m | u8 weighted |
///   offsets[n+1] u64 | edges[m] u64 | weights[m] u32 (if weighted)
void save_binary(const CsrGraph& graph, std::ostream& os);
CsrGraph load_binary(std::istream& is);

void save_binary_file(const CsrGraph& graph, const std::string& path);
CsrGraph load_binary_file(const std::string& path);

/// Text edge list: one "src dst [weight]" triple per line; '#' comments.
void save_edge_list(const CsrGraph& graph, std::ostream& os);
CsrGraph load_edge_list(std::istream& is, bool symmetrize = false);

}  // namespace cxlgraph::graph
