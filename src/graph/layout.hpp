#pragma once
/// \file layout.hpp
/// Alignment-aware edge-list layouts (graph preprocessing).
///
/// A second Sec.-5 "tailored format" lever: instead of packing sublists
/// back to back, pad each sublist's start to an alignment boundary. A
/// sublist then never shares its first line with a neighbor, so an aligned
/// fetch wastes at most the tail padding — uncached RAF drops toward 1 at
/// the cost of extra capacity. cxlgraph models the layout as a per-vertex
/// byte-offset table the trace builder can substitute for the natural CSR
/// offsets (data is never materialized; only addresses matter).

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace cxlgraph::graph {

class EdgeListLayout {
 public:
  /// Natural CSR packing (offset[v] = offsets[v] * 8).
  static EdgeListLayout natural(const CsrGraph& graph);

  /// Each sublist starts on an `alignment`-byte boundary. alignment must
  /// be a nonzero multiple of 8.
  static EdgeListLayout aligned(const CsrGraph& graph,
                                std::uint32_t alignment);

  std::uint64_t byte_offset(VertexId v) const noexcept {
    return offsets_[v];
  }
  /// Total external-memory footprint including padding.
  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  /// Padding overhead relative to the natural layout (1.0 = none).
  double expansion_factor(const CsrGraph& graph) const noexcept {
    const std::uint64_t natural_bytes = graph.edge_list_bytes();
    return natural_bytes == 0
               ? 1.0
               : static_cast<double>(total_bytes_) /
                     static_cast<double>(natural_bytes);
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace cxlgraph::graph
