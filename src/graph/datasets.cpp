#include "graph/datasets.hpp"

#include <stdexcept>

#include "graph/generate.hpp"

namespace cxlgraph::graph {

const std::vector<DatasetSpec>& paper_datasets() {
  static const std::vector<DatasetSpec> specs = {
      {DatasetId::kUrand, "urand", "urand27", 32.0},
      {DatasetId::kKron, "kron", "kron27", 67.0},
      {DatasetId::kFriendster, "friendster", "Friendster", 55.1},
  };
  return specs;
}

CsrGraph make_dataset(DatasetId id, unsigned scale, bool weighted,
                      std::uint64_t seed, unsigned jobs) {
  GeneratorOptions options;
  options.seed = seed;
  options.max_weight = weighted ? 63 : 0;  // GAP benchmark convention
  options.jobs = jobs;
  switch (id) {
    case DatasetId::kUrand:
      return generate_uniform(std::uint64_t{1} << scale, 32.0, options);
    case DatasetId::kKron:
      // Graph500 edge factor 16 yields directed degree 32 before
      // symmetrization; R-MAT skew leaves ~half the vertices isolated, so
      // the non-isolated average degree lands in the paper's ~67 range.
      return generate_kronecker(scale, 16.0, options);
    case DatasetId::kFriendster:
      // Power-law exponent 2.5 approximates Friendster's degree skew.
      return generate_power_law(std::uint64_t{1} << scale, 55.1, 2.5,
                                options);
  }
  throw std::invalid_argument("unknown dataset id");
}

DatasetId dataset_from_name(const std::string& name) {
  for (const DatasetSpec& spec : paper_datasets()) {
    if (spec.name == name || spec.paper_name == name) return spec.id;
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace cxlgraph::graph
