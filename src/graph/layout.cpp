#include "graph/layout.hpp"

#include <algorithm>
#include <stdexcept>

namespace cxlgraph::graph {

EdgeListLayout EdgeListLayout::natural(const CsrGraph& graph) {
  EdgeListLayout layout;
  const std::uint64_t n = graph.num_vertices();
  layout.offsets_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    layout.offsets_[v] = graph.sublist_byte_offset(v);
  }
  layout.total_bytes_ = graph.edge_list_bytes();
  return layout;
}

EdgeListLayout EdgeListLayout::aligned(const CsrGraph& graph,
                                       std::uint32_t alignment) {
  if (alignment == 0 || alignment % kBytesPerEdge != 0) {
    throw std::invalid_argument(
        "layout alignment must be a nonzero multiple of 8");
  }
  EdgeListLayout layout;
  const std::uint64_t n = graph.num_vertices();
  layout.offsets_.resize(n);
  std::uint64_t cursor = 0;
  for (VertexId v = 0; v < n; ++v) {
    cursor = (cursor + alignment - 1) / alignment * alignment;
    layout.offsets_[v] = cursor;
    cursor += graph.sublist_bytes(v);
  }
  layout.total_bytes_ = cursor;
  return layout;
}

}  // namespace cxlgraph::graph
