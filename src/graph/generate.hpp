#pragma once
/// \file generate.hpp
/// Synthetic graph generators.
///
/// The paper evaluates on urand27 / kron27 (GAP benchmark generators, 2^27
/// vertices) and the real-world Friendster graph. At full scale those need
/// tens of GB, so cxlgraph generates structurally equivalent graphs at a
/// configurable scale: a uniform-random (Erdős–Rényi-style) graph, an R-MAT /
/// Kronecker graph with Graph500 parameters, and a Chung–Lu power-law graph
/// standing in for Friendster. Generators are deterministic in the seed.

#include <cstdint>

#include "graph/csr.hpp"

namespace cxlgraph::graph {

struct GeneratorOptions {
  std::uint64_t seed = 42;
  /// Assign uniform random weights in [1, max_weight] (for SSSP). 0 keeps
  /// the graph unweighted.
  std::uint32_t max_weight = 0;
  /// Symmetrize (undirected), dedup, strip self-loops — GAP-style cleanup.
  bool clean = true;
  /// Edge sampling is split into fixed-size chunks, each with its own
  /// seed-derived RNG stream, so the output depends only on `seed` —
  /// never on thread count. 0 fans the chunks across the shared pool,
  /// 1 runs them serially on the calling thread, N > 1 uses a scoped
  /// N-thread pool (bounding the run to N workers).
  unsigned jobs = 0;
};

/// Fixed chunk granularity for parallel edge sampling. Part of the output
/// contract: changing it changes which RNG stream samples which edge.
inline constexpr std::uint64_t kGeneratorChunkEdges = 1ull << 14;

/// Uniform-random graph: `num_vertices * avg_degree / 2` undirected edges
/// with both endpoints chosen uniformly (GAP "urand" analogue).
CsrGraph generate_uniform(std::uint64_t num_vertices, double avg_degree,
                          const GeneratorOptions& options = {});

/// Kronecker / R-MAT graph with Graph500 probabilities (A=0.57, B=0.19,
/// C=0.19). `scale` is log2 of the vertex count; `edge_factor` is the
/// number of undirected edges per vertex (Graph500 uses 16; the paper's
/// kron27 has average *degree* 67 among non-isolated vertices because R-MAT
/// leaves many vertices isolated).
CsrGraph generate_kronecker(unsigned scale, double edge_factor,
                            const GeneratorOptions& options = {});

/// Chung–Lu power-law graph: expected degrees follow a Zipf-like
/// distribution with the given exponent, scaled to hit `avg_degree`.
/// Stands in for the Friendster social network (power-law degrees,
/// avg degree ~55).
CsrGraph generate_power_law(std::uint64_t num_vertices, double avg_degree,
                            double exponent,
                            const GeneratorOptions& options = {});

/// Deterministic shapes for unit tests.
CsrGraph make_path(std::uint64_t n);           // 0-1-2-...-(n-1), undirected
CsrGraph make_ring(std::uint64_t n);           // path + closing edge
CsrGraph make_star(std::uint64_t leaves);      // vertex 0 to all others
CsrGraph make_complete(std::uint64_t n);       // clique
CsrGraph make_grid(std::uint64_t rows, std::uint64_t cols);  // 4-neighbor

}  // namespace cxlgraph::graph
