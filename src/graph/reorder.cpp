#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace cxlgraph::graph {

const char* to_string(VertexOrder order) noexcept {
  switch (order) {
    case VertexOrder::kIdentity:
      return "identity";
    case VertexOrder::kDegreeSorted:
      return "degree-sorted";
    case VertexOrder::kBfs:
      return "bfs";
    case VertexOrder::kRandom:
      return "random";
  }
  return "?";
}

namespace {

std::vector<VertexId> identity_permutation(std::uint64_t n) {
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  return perm;
}

std::vector<VertexId> degree_sorted_permutation(const CsrGraph& graph) {
  const std::uint64_t n = graph.num_vertices();
  std::vector<VertexId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
  // Stable sort keeps the relabeling deterministic across platforms.
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&](VertexId a, VertexId b) {
                     return graph.degree(a) > graph.degree(b);
                   });
  std::vector<VertexId> perm(n);
  for (std::uint64_t new_id = 0; new_id < n; ++new_id) {
    perm[by_degree[new_id]] = new_id;
  }
  return perm;
}

std::vector<VertexId> bfs_permutation(const CsrGraph& graph,
                                      std::uint64_t seed) {
  const std::uint64_t n = graph.num_vertices();
  std::vector<VertexId> perm(n, n);  // n = unassigned sentinel
  VertexId next_id = 0;

  util::Xoshiro256 rng(seed ^ 0xb0f5);
  std::vector<VertexId> queue;
  queue.reserve(n);

  // BFS forest: start from a random vertex; restart for every untouched
  // component (and isolated vertices at the end, in ID order).
  const VertexId first = n == 0 ? 0 : rng.next_below(n);
  for (std::uint64_t probe = 0; probe < n; ++probe) {
    const VertexId root = (first + probe) % n;
    if (perm[root] != n) continue;
    perm[root] = next_id++;
    queue.push_back(root);
    std::size_t head = queue.size() - 1;
    while (head < queue.size()) {
      const VertexId u = queue[head++];
      for (const VertexId v : graph.neighbors(u)) {
        if (perm[v] == n) {
          perm[v] = next_id++;
          queue.push_back(v);
        }
      }
    }
  }
  return perm;
}

std::vector<VertexId> random_permutation(std::uint64_t n,
                                         std::uint64_t seed) {
  std::vector<VertexId> perm = identity_permutation(n);
  util::Xoshiro256 rng(seed ^ 0x5eed);
  for (std::uint64_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  return perm;
}

}  // namespace

std::vector<VertexId> make_permutation(const CsrGraph& graph,
                                       VertexOrder order,
                                       std::uint64_t seed) {
  switch (order) {
    case VertexOrder::kIdentity:
      return identity_permutation(graph.num_vertices());
    case VertexOrder::kDegreeSorted:
      return degree_sorted_permutation(graph);
    case VertexOrder::kBfs:
      return bfs_permutation(graph, seed);
    case VertexOrder::kRandom:
      return random_permutation(graph.num_vertices(), seed);
  }
  throw std::invalid_argument("unknown vertex order");
}

CsrGraph apply_permutation(const CsrGraph& graph,
                           const std::vector<VertexId>& perm) {
  const std::uint64_t n = graph.num_vertices();
  if (perm.size() != n) {
    throw std::invalid_argument("permutation size mismatch");
  }
  // Verify bijectivity up front; a bad permutation would silently corrupt
  // the graph otherwise.
  {
    std::vector<std::uint8_t> seen(n, 0);
    for (const VertexId p : perm) {
      if (p >= n || seen[p]) {
        throw std::invalid_argument("permutation is not a bijection");
      }
      seen[p] = 1;
    }
  }

  std::vector<EdgeIndex> offsets(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    offsets[perm[v] + 1] = graph.degree(v);
  }
  for (std::uint64_t i = 1; i <= n; ++i) offsets[i] += offsets[i - 1];

  std::vector<VertexId> edges(graph.num_edges());
  std::vector<Weight> weights;
  if (graph.weighted()) weights.resize(graph.num_edges());

  for (VertexId v = 0; v < n; ++v) {
    const EdgeIndex base = offsets[perm[v]];
    const auto neighbors = graph.neighbors(v);
    const auto old_weights = graph.weighted()
                                 ? graph.weights_of(v)
                                 : std::span<const Weight>{};
    // Relabel targets, then sort the sublist so neighbor lists stay
    // ID-ordered in the new labeling.
    std::vector<std::pair<VertexId, Weight>> sublist(neighbors.size());
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      sublist[i] = {perm[neighbors[i]],
                    old_weights.empty() ? Weight{1} : old_weights[i]};
    }
    std::sort(sublist.begin(), sublist.end());
    for (std::size_t i = 0; i < sublist.size(); ++i) {
      edges[base + i] = sublist[i].first;
      if (!weights.empty()) weights[base + i] = sublist[i].second;
    }
  }
  return CsrGraph(std::move(offsets), std::move(edges), std::move(weights));
}

CsrGraph reorder(const CsrGraph& graph, VertexOrder order,
                 std::uint64_t seed) {
  return apply_permutation(graph, make_permutation(graph, order, seed));
}

}  // namespace cxlgraph::graph
