#include "graph/csr.hpp"

#include <stdexcept>

namespace cxlgraph::graph {

CsrGraph::CsrGraph(std::vector<EdgeIndex> offsets,
                   std::vector<VertexId> edges, std::vector<Weight> weights)
    : offsets_(std::move(offsets)),
      edges_(std::move(edges)),
      weights_(std::move(weights)) {
  const std::string problem = validate();
  if (!problem.empty()) {
    throw std::invalid_argument("CsrGraph: " + problem);
  }
}

std::string CsrGraph::validate() const {
  if (offsets_.empty()) {
    return edges_.empty() ? std::string{} : "edges without offsets";
  }
  if (offsets_.front() != 0) return "offsets[0] != 0";
  if (offsets_.back() != edges_.size()) {
    return "offsets.back() != edges.size()";
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    if (offsets_[i] < offsets_[i - 1]) {
      return "offsets decrease at index " + std::to_string(i);
    }
  }
  const std::uint64_t n = num_vertices();
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i] >= n) {
      return "edge target " + std::to_string(edges_[i]) +
             " out of range at position " + std::to_string(i);
    }
  }
  if (!weights_.empty() && weights_.size() != edges_.size()) {
    return "weights size mismatch";
  }
  return {};
}

DegreeStats degree_stats(const CsrGraph& graph) {
  DegreeStats s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  s.edge_list_bytes = graph.edge_list_bytes();
  std::uint64_t nonzero = 0;
  for (VertexId v = 0; v < s.num_vertices; ++v) {
    const std::uint64_t d = graph.degree(v);
    if (d == 0) {
      ++s.zero_degree_vertices;
    } else {
      ++nonzero;
    }
    if (d > s.max_degree) s.max_degree = d;
  }
  if (nonzero > 0) {
    s.avg_degree_nonzero =
        static_cast<double>(s.num_edges) / static_cast<double>(nonzero);
    s.avg_sublist_bytes = s.avg_degree_nonzero * kBytesPerEdge;
  }
  return s;
}

}  // namespace cxlgraph::graph
