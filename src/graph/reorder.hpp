#pragma once
/// \file reorder.hpp
/// Vertex reordering (graph preprocessing).
///
/// The paper's discussion section points at "tailored graph formats and
/// preprocessing" as the way to raise the average transfer size d beyond
/// what raw CSR offers. Reordering is the classic lever: relabeling
/// vertices changes where sublists sit in the edge list and therefore how
/// traversals hit alignment boundaries and caches.
///
/// Provided orders:
///  * identity       — no-op (baseline);
///  * degree-sorted  — hubs first; packs hot sublists densely;
///  * bfs            — CSR rows in BFS discovery order (Cuthill–McKee
///                     flavor): co-visited vertices become neighbors in
///                     the edge list;
///  * random         — worst-case scatter (adversarial baseline).

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace cxlgraph::graph {

enum class VertexOrder {
  kIdentity,
  kDegreeSorted,
  kBfs,
  kRandom,
};

const char* to_string(VertexOrder order) noexcept;

/// Computes a permutation for the requested order. perm[old_id] = new_id.
/// Deterministic in `seed` (used by kRandom and to pick the BFS root).
std::vector<VertexId> make_permutation(const CsrGraph& graph,
                                       VertexOrder order,
                                       std::uint64_t seed = 0);

/// Returns the relabeled graph: vertex v becomes perm[v], edges and
/// weights follow. perm must be a bijection on [0, n).
CsrGraph apply_permutation(const CsrGraph& graph,
                           const std::vector<VertexId>& perm);

/// Convenience: permutation + application in one call.
CsrGraph reorder(const CsrGraph& graph, VertexOrder order,
                 std::uint64_t seed = 0);

}  // namespace cxlgraph::graph
