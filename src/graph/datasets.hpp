#pragma once
/// \file datasets.hpp
/// The paper's three evaluation datasets (Table 1), reproduced at a
/// configurable scale.
///
///   urand27     uniform random, 2^27 vertices, avg degree 32.0
///   kron27      Kronecker (Graph500 R-MAT), 2^27 vertices, avg degree 67.0
///   Friendster  real-world social graph, avg degree 55.1
///
/// At `scale` s we generate 2^s vertices with the same average degree (for
/// kron, the same edge factor so the non-isolated average degree lands near
/// the paper's 67). Friendster is replaced by a Chung–Lu power-law graph —
/// see DESIGN.md's substitution table.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace cxlgraph::graph {

enum class DatasetId {
  kUrand,
  kKron,
  kFriendster,
};

struct DatasetSpec {
  DatasetId id;
  std::string name;        // "urand", "kron", "friendster"
  std::string paper_name;  // "urand27", ...
  double paper_avg_degree; // Table 1 value
};

/// The three Table-1 datasets, in paper order.
const std::vector<DatasetSpec>& paper_datasets();

/// Generates one dataset at 2^scale vertices. Weighted graphs (for SSSP)
/// carry uniform weights in [1, 63] as in the GAP benchmark. `jobs`
/// follows GeneratorOptions::jobs (1 = serial; output identical either
/// way).
CsrGraph make_dataset(DatasetId id, unsigned scale, bool weighted,
                      std::uint64_t seed = 42, unsigned jobs = 0);

/// Parses "urand" / "kron" / "friendster" (case-sensitive).
DatasetId dataset_from_name(const std::string& name);

}  // namespace cxlgraph::graph
