#include "partition/partition.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/reorder.hpp"
#include "util/rng.hpp"

namespace cxlgraph::partition {

namespace {

using graph::EdgeIndex;
using graph::VertexId;

/// Stateless per-edge hash for kHashEdge: mixes the seed with both
/// endpoints so parallel edges colocate but each distinct edge lands
/// independently.
std::uint32_t hash_edge_to_shard(std::uint64_t seed, VertexId src,
                                 VertexId dst, std::uint32_t num_shards) {
  util::SplitMix64 sm(seed ^ (src * 0x9e3779b97f4a7c15ULL) ^
                      (dst * 0xbf58476d1ce4e5b9ULL));
  return static_cast<std::uint32_t>(sm.next() % num_shards);
}

std::uint32_t hash_vertex_to_shard(std::uint64_t seed, VertexId v,
                                   std::uint32_t num_shards) {
  util::SplitMix64 sm(seed ^ (v * 0x94d049bb133111ebULL));
  return static_cast<std::uint32_t>(sm.next() % num_shards);
}

/// Contiguous ownership: shard s owns [bounds[s], bounds[s+1]).
std::vector<std::uint32_t> owners_from_bounds(
    const std::vector<VertexId>& bounds) {
  const VertexId n = bounds.back();
  std::vector<std::uint32_t> owner(n);
  for (std::uint32_t s = 0; s + 1 < bounds.size(); ++s) {
    for (VertexId v = bounds[s]; v < bounds[s + 1]; ++v) owner[v] = s;
  }
  return owner;
}

std::vector<std::uint32_t> assign_owners(const graph::CsrGraph& g,
                                         Strategy strategy,
                                         std::uint32_t num_shards,
                                         std::uint64_t seed) {
  const std::uint64_t n = g.num_vertices();
  switch (strategy) {
    case Strategy::kVertexRange: {
      // Equal vertex counts; the first n % shards ranges get one extra.
      std::vector<VertexId> bounds(num_shards + 1, 0);
      const std::uint64_t base = n / num_shards;
      const std::uint64_t extra = n % num_shards;
      for (std::uint32_t s = 0; s < num_shards; ++s) {
        bounds[s + 1] = bounds[s] + base + (s < extra ? 1 : 0);
      }
      return owners_from_bounds(bounds);
    }
    case Strategy::kDegreeBalanced: {
      // Contiguous ranges cut where the cumulative degree (the offsets
      // array itself) crosses each shard's equal share of the edge list.
      const std::uint64_t m = g.num_edges();
      std::vector<VertexId> bounds(num_shards + 1, 0);
      bounds[num_shards] = n;
      for (std::uint32_t s = 1; s < num_shards; ++s) {
        const std::uint64_t target = m * s / num_shards;
        const auto& offsets = g.offsets();
        const auto it = std::lower_bound(offsets.begin(), offsets.end(),
                                         static_cast<EdgeIndex>(target));
        bounds[s] = std::min<VertexId>(
            static_cast<VertexId>(it - offsets.begin()), n);
      }
      // Splitting on raw offsets can produce out-of-order cuts on graphs
      // with huge hubs; clamp to keep ranges monotone.
      for (std::uint32_t s = 1; s <= num_shards; ++s) {
        bounds[s] = std::max(bounds[s], bounds[s - 1]);
      }
      return owners_from_bounds(bounds);
    }
    case Strategy::kHashEdge: {
      std::vector<std::uint32_t> owner(n);
      for (VertexId v = 0; v < n; ++v) {
        owner[v] = hash_vertex_to_shard(seed, v, num_shards);
      }
      return owner;
    }
  }
  throw std::invalid_argument("unknown partition strategy");
}

/// Applies `reorder` to one built shard: relabels the local CSR and
/// remaps both ID maps so to_local/to_global stay consistent. Ownership
/// and num_owned are untouched — reordering is local-layout only.
void reorder_shard(ShardGraph& shard, ShardReorder reorder) {
  if (reorder == ShardReorder::kNone) return;
  const std::vector<VertexId> perm = graph::make_permutation(
      shard.graph, graph::VertexOrder::kDegreeSorted);
  shard.graph = graph::apply_permutation(shard.graph, perm);
  std::vector<VertexId> local_to_global(shard.local_to_global.size());
  for (VertexId l = 0; l < shard.local_to_global.size(); ++l) {
    local_to_global[perm[l]] = shard.local_to_global[l];
  }
  shard.local_to_global = std::move(local_to_global);
  for (auto& [global, local] : shard.global_to_local) {
    local = perm[local];
  }
}

/// Shard index for the directed edge (src, edge-list position e).
std::uint32_t edge_shard(Strategy strategy,
                         const std::vector<std::uint32_t>& owner,
                         std::uint64_t seed, std::uint32_t num_shards,
                         VertexId src, VertexId dst) {
  if (strategy == Strategy::kHashEdge) {
    return hash_edge_to_shard(seed, src, dst, num_shards);
  }
  return owner[src];
}

}  // namespace

std::string to_string(Strategy strategy) {
  switch (strategy) {
    case Strategy::kVertexRange:
      return "vertex-range";
    case Strategy::kDegreeBalanced:
      return "degree-balanced";
    case Strategy::kHashEdge:
      return "hash-edge";
  }
  return "unknown";
}

Strategy strategy_from_name(const std::string& name) {
  for (const Strategy s : all_strategies()) {
    if (to_string(s) == name) return s;
  }
  throw std::invalid_argument("unknown partitioner: " + name);
}

const std::vector<Strategy>& all_strategies() {
  static const std::vector<Strategy> strategies = {
      Strategy::kVertexRange, Strategy::kDegreeBalanced,
      Strategy::kHashEdge};
  return strategies;
}

std::string to_string(ShardReorder reorder) {
  switch (reorder) {
    case ShardReorder::kNone:
      return "none";
    case ShardReorder::kDegreeSorted:
      return "shard-degree";
  }
  return "unknown";
}

ShardReorder reorder_from_name(const std::string& name) {
  for (const ShardReorder r :
       {ShardReorder::kNone, ShardReorder::kDegreeSorted}) {
    if (to_string(r) == name) return r;
  }
  throw std::invalid_argument("unknown shard reorder: " + name);
}

Partition make_partition(const graph::CsrGraph& g, Strategy strategy,
                         std::uint32_t num_shards, std::uint64_t seed,
                         ShardReorder reorder) {
  if (num_shards == 0) {
    throw std::invalid_argument("make_partition: num_shards must be >= 1");
  }
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();

  Partition p;
  p.strategy = strategy;
  p.num_shards = num_shards;
  p.owner = assign_owners(g, strategy, num_shards, seed);
  p.shards.resize(num_shards);

  // One pass computing each directed edge's shard; reused below so the
  // hash is evaluated once per edge.
  std::vector<std::uint32_t> shard_of_edge(m);
  for (VertexId u = 0; u < n; ++u) {
    const EdgeIndex begin = g.offsets()[u];
    const auto neighbors = g.neighbors(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      shard_of_edge[begin + i] =
          edge_shard(strategy, p.owner, seed, num_shards, u, neighbors[i]);
    }
  }

  // Per-shard membership: owned vertices plus endpoints of local edges,
  // gathered as candidate lists in O(n + m) total (no O(shards x n)
  // matrix), then sorted and deduplicated. Ascending global order assigns
  // local IDs, so a single shard gets the identity mapping.
  std::vector<std::vector<VertexId>> members(num_shards);
  std::vector<std::uint64_t> shard_edges(num_shards, 0);
  for (VertexId v = 0; v < n; ++v) members[p.owner[v]].push_back(v);
  for (VertexId u = 0; u < n; ++u) {
    const EdgeIndex begin = g.offsets()[u];
    const auto neighbors = g.neighbors(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const std::uint32_t s = shard_of_edge[begin + i];
      members[s].push_back(u);
      members[s].push_back(neighbors[i]);
      ++shard_edges[s];
    }
  }

  std::uint64_t total_local_vertices = 0;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    ShardGraph& shard = p.shards[s];
    std::sort(members[s].begin(), members[s].end());
    members[s].erase(std::unique(members[s].begin(), members[s].end()),
                     members[s].end());
    shard.local_to_global = std::move(members[s]);
    shard.global_to_local.reserve(shard.local_to_global.size());
    for (VertexId l = 0; l < shard.local_to_global.size(); ++l) {
      const VertexId v = shard.local_to_global[l];
      shard.global_to_local.emplace(v, l);
      if (p.owner[v] == s) ++shard.num_owned;
    }
    total_local_vertices += shard.local_to_global.size();

    std::vector<EdgeIndex> offsets;
    offsets.reserve(shard.local_to_global.size() + 1);
    offsets.push_back(0);
    std::vector<VertexId> edges;
    edges.reserve(shard_edges[s]);
    std::vector<graph::Weight> weights;
    if (g.weighted()) weights.reserve(shard_edges[s]);
    for (const VertexId u : shard.local_to_global) {
      const EdgeIndex begin = g.offsets()[u];
      const auto neighbors = g.neighbors(u);
      const auto edge_weights = g.weighted()
                                    ? g.weights_of(u)
                                    : std::span<const graph::Weight>{};
      for (std::size_t i = 0; i < neighbors.size(); ++i) {
        if (shard_of_edge[begin + i] != s) continue;
        edges.push_back(shard.global_to_local.at(neighbors[i]));
        if (g.weighted()) weights.push_back(edge_weights[i]);
      }
      offsets.push_back(edges.size());
    }
    shard.graph = graph::CsrGraph(std::move(offsets), std::move(edges),
                                  std::move(weights));
    reorder_shard(shard, reorder);
  }

  // Cut statistics over the ownership assignment.
  CutStats& stats = p.stats;
  stats.total_edges = m;
  stats.num_shards = num_shards;
  stats.pair_cut_edges.assign(
      static_cast<std::size_t>(num_shards) * num_shards, 0);
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (p.owner[u] != p.owner[v]) {
        ++stats.cut_edges;
        ++stats.pair_cut_edges[static_cast<std::size_t>(p.owner[u]) *
                                   num_shards +
                               p.owner[v]];
      }
    }
  }
  stats.cut_fraction =
      m == 0 ? 0.0
             : static_cast<double>(stats.cut_edges) / static_cast<double>(m);
  stats.min_shard_edges =
      *std::min_element(shard_edges.begin(), shard_edges.end());
  stats.max_shard_edges =
      *std::max_element(shard_edges.begin(), shard_edges.end());
  const double avg_edges =
      static_cast<double>(m) / static_cast<double>(num_shards);
  stats.edge_imbalance =
      m == 0 ? 1.0
             : static_cast<double>(stats.max_shard_edges) / avg_edges;
  stats.vertex_replication =
      n == 0 ? 1.0
             : static_cast<double>(total_local_vertices) /
                   static_cast<double>(n);
  return p;
}

}  // namespace cxlgraph::partition
