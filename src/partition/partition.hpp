#pragma once
/// \file partition.hpp
/// Graph partitioning for sharded multi-GPU scale-out simulation.
///
/// A Partition splits a CsrGraph into per-shard subgraphs. Each shard holds
/// a compact local-ID CSR of the edges assigned to it plus bidirectional
/// global<->local ID maps; every global vertex has exactly one *owning*
/// shard (the one responsible for its traversal state), while vertices that
/// merely appear as endpoints of another shard's edges exist there as
/// ghosts. core::ClusterRuntime replays per-shard access traces against the
/// shard subgraphs and charges inter-shard frontier traffic to the cut the
/// partition induces.
///
/// Three strategies, from naive to placement-aware:
///  * kVertexRange    — contiguous equal-vertex ranges (1D block);
///  * kDegreeBalanced — contiguous ranges cut so each shard stores an
///                      approximately equal share of the edge list;
///  * kHashEdge       — each edge hashed to a shard independently (vertex
///                      ownership hashed too), trading locality for
///                      near-perfect edge balance on skewed graphs.
///
/// With one shard every strategy degenerates to the identity: the single
/// shard's subgraph is byte-identical to the input graph and the ID maps
/// are the identity, which is what lets ClusterRuntime reproduce the
/// single-runtime path bit-for-bit.

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"

namespace cxlgraph::partition {

enum class Strategy {
  kVertexRange,
  kDegreeBalanced,
  kHashEdge,
};

std::string to_string(Strategy strategy);
Strategy strategy_from_name(const std::string& name);
const std::vector<Strategy>& all_strategies();

/// Partitioner-aware reordering: how each shard relabels its *local*
/// subgraph after the cut is fixed. Ownership, the cut, and the exchange
/// traffic are untouched — only where sublists sit inside the shard's
/// local edge list changes, which is exactly the locality lever
/// (alignment boundaries, cache reuse, hot-prefix packing) a per-device
/// layout can pull without re-partitioning.
///  * kNone        — local IDs in ascending global-ID order (identity at
///                   one shard, the bit-identity baseline);
///  * kDegreeSorted — hubs first within each shard: local ID 0 is the
///                   shard's highest-degree vertex, packing its hottest
///                   sublists into a dense prefix.
enum class ShardReorder {
  kNone,
  kDegreeSorted,
};

std::string to_string(ShardReorder reorder);
ShardReorder reorder_from_name(const std::string& name);

/// Sentinel for "this global vertex has no local ID on this shard".
inline constexpr graph::VertexId kNoLocalId =
    std::numeric_limits<graph::VertexId>::max();

/// One shard's slice of the graph: a compact CSR over local vertex IDs.
/// Under ShardReorder::kNone local IDs are assigned in ascending global-ID
/// order over the union of the shard's owned vertices and the endpoints of
/// its edges, so a single-shard partition yields the identity mapping;
/// other reorders relabel afterwards with the ID maps updated to match.
struct ShardGraph {
  graph::CsrGraph graph;
  /// local ID -> global ID; size == graph.num_vertices().
  std::vector<graph::VertexId> local_to_global;
  /// global ID -> local ID for vertices present on this shard.
  std::unordered_map<graph::VertexId, graph::VertexId> global_to_local;
  /// How many of the shard's local vertices it owns (the rest are ghosts).
  std::uint64_t num_owned = 0;

  /// Local ID for `global`, or kNoLocalId when absent from this shard.
  graph::VertexId to_local(graph::VertexId global) const {
    const auto it = global_to_local.find(global);
    return it == global_to_local.end() ? kNoLocalId : it->second;
  }
  graph::VertexId to_global(graph::VertexId local) const {
    return local_to_global[local];
  }
};

/// Partition quality numbers, the knobs a placement study sweeps.
struct CutStats {
  std::uint64_t total_edges = 0;
  /// Directed edges whose endpoints are owned by different shards.
  std::uint64_t cut_edges = 0;
  double cut_fraction = 0.0;
  /// Per-shard-pair cut matrix, row-major [src_owner * num_shards +
  /// dst_owner]: directed edges from a vertex owned by `src_owner` to a
  /// vertex owned by `dst_owner`. Diagonal entries are zero; the grand
  /// total equals cut_edges. Row sums are a shard's egress cut (traffic it
  /// originates), column sums its ingress cut (traffic it absorbs) — the
  /// asymmetry an all-to-all exchange model charges per destination.
  /// make_partition fills both; on a default-constructed CutStats the
  /// matrix is empty and num_shards stays 0, so egress_cut/ingress_cut
  /// return 0 while pair_cut (an unchecked index) must not be called.
  std::uint32_t num_shards = 0;
  std::vector<std::uint64_t> pair_cut_edges;

  std::uint64_t pair_cut(std::uint32_t from, std::uint32_t to) const {
    return pair_cut_edges[static_cast<std::size_t>(from) * num_shards + to];
  }
  std::uint64_t egress_cut(std::uint32_t from) const {
    std::uint64_t total = 0;
    for (std::uint32_t t = 0; t < num_shards; ++t) total += pair_cut(from, t);
    return total;
  }
  std::uint64_t ingress_cut(std::uint32_t to) const {
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < num_shards; ++s) total += pair_cut(s, to);
    return total;
  }
  std::uint64_t min_shard_edges = 0;
  std::uint64_t max_shard_edges = 0;
  /// max_shard_edges / (total_edges / shards); 1.0 is a perfect balance.
  double edge_imbalance = 1.0;
  /// Sum of per-shard local vertices (owned + ghosts) over global vertices;
  /// 1.0 means no replication.
  double vertex_replication = 1.0;
};

struct Partition {
  Strategy strategy = Strategy::kVertexRange;
  std::uint32_t num_shards = 1;
  /// global vertex -> owning shard; size == graph.num_vertices().
  std::vector<std::uint32_t> owner;
  std::vector<ShardGraph> shards;
  CutStats stats;
};

/// Partitions `graph` into `num_shards` shards. Every edge lands on exactly
/// one shard and shard unions reconstruct the graph. `seed` perturbs the
/// kHashEdge hash only; `reorder` relabels each shard's local subgraph
/// after the cut is fixed (ownership and cut stats are reorder-invariant).
/// Throws std::invalid_argument for num_shards == 0.
/// Deterministic in (graph, strategy, num_shards, seed, reorder).
Partition make_partition(const graph::CsrGraph& graph, Strategy strategy,
                         std::uint32_t num_shards, std::uint64_t seed = 0,
                         ShardReorder reorder = ShardReorder::kNone);

}  // namespace cxlgraph::partition
