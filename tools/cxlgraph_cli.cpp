/// \file cxlgraph_cli.cpp
/// Command-line front end for the cxlgraph library.
///
///   cxlgraph generate --dataset=urand --scale=18 --out=g.cxlg
///   cxlgraph convert  --in=edges.txt --out=g.cxlg [--symmetrize]
///   cxlgraph info     g.cxlg
///   cxlgraph reorder  --in=g.cxlg --out=g2.cxlg --order=degree-sorted
///   cxlgraph run      --graph=g.cxlg --algo=bfs --backend=cxl \
///                     [--added-us=1.0] [--alignment=32] [--gen3] \
///                     [--shards=4] [--partitioner=degree-balanced] \
///                     [--reorder=shard-degree]
///   cxlgraph serve    --dataset=urand --scale=14 --backend=cxl \
///                     [--qps=500] [--queries=128] [--policy=fifo] \
///                     [--slo-us=20000] [--queue-cap=64] [--closed-loop] \
///                     [--replicas=4] [--router=join-shortest-queue] \
///                     [--migrate=at_ms:class:from:to] [--elastic-max=4] \
///                     [--incidents-out=incidents.json]
///
/// `run` without --graph generates the dataset on the fly
/// (--dataset/--scale). With --shards >= 2 the run goes through the
/// sharded cluster simulation (core::ClusterRuntime): the graph is
/// partitioned, every shard gets its own GPU + backend stack, and the
/// report adds the exchange/cut numbers.
///
/// `serve` admits a seeded stream of mixed analytics queries against one
/// shared stack (serve::QueryServer) and reports the latency tail,
/// goodput, SLO violations, and shed rate under the chosen scheduling
/// policy and admission cap. Any fleet option (--replicas >= 2, --router,
/// --migrate, --quota, --elastic-max, --slo-shed, --incidents-out)
/// switches the command to serve::FleetServer: N replicated stacks behind
/// the chosen router, with optional live tenant migration, elastic
/// scaling, and the health monitor's incident log (--incidents-out).

#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "core/cluster_runtime.hpp"
#include "core/runtime.hpp"
#include "fault/fault.hpp"
#include "graph/datasets.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "obs/telemetry.hpp"
#include "serve/fleet.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace cxlgraph;

int usage() {
  std::cerr << "usage: cxlgraph <generate|convert|info|reorder|run|serve> "
               "[options]\n"
               "run --help with a subcommand for its options\n";
  return 2;
}

/// Telemetry plumbing shared by `run` and `serve`: both outputs default
/// empty (telemetry fully off — the bit-identical fast path); naming
/// either file enables the sink for the whole run.
void add_telemetry_options(util::CliParser& cli) {
  cli.add_option("trace-out",
                 "write a Chrome trace-event JSON timeline here "
                 "(load in Perfetto)",
                 "");
  cli.add_option("metrics-out", "write a metrics snapshot JSON here", "");
}

std::unique_ptr<obs::Telemetry> make_telemetry(const util::CliParser& cli) {
  if (cli.get("trace-out").empty() && cli.get("metrics-out").empty()) {
    return nullptr;
  }
  return std::make_unique<obs::Telemetry>(obs::Telemetry::enabled_config());
}

int save_telemetry(const util::CliParser& cli,
                   const obs::Telemetry* telemetry) {
  if (telemetry == nullptr) return 0;
  const std::string trace_path = cli.get("trace-out");
  if (!trace_path.empty() && !telemetry->save_trace(trace_path)) {
    std::cerr << "error: cannot write trace to " << trace_path << "\n";
    return 1;
  }
  const std::string metrics_path = cli.get("metrics-out");
  if (!metrics_path.empty() && !telemetry->save_metrics(metrics_path)) {
    std::cerr << "error: cannot write metrics to " << metrics_path << "\n";
    return 1;
  }
  return 0;
}

graph::VertexOrder order_from(const std::string& name) {
  for (const auto order :
       {graph::VertexOrder::kIdentity, graph::VertexOrder::kDegreeSorted,
        graph::VertexOrder::kBfs, graph::VertexOrder::kRandom}) {
    if (graph::to_string(order) == name) return order;
  }
  throw std::invalid_argument("unknown order: " + name);
}

int cmd_generate(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("dataset", "urand | kron | friendster", "urand");
  cli.add_option("scale", "log2 vertex count", "16");
  cli.add_option("seed", "random seed", "42");
  cli.add_option("out", "output path (binary CSR)", "graph.cxlg");
  cli.add_flag("weighted", "attach uniform [1,63] edge weights");
  if (!cli.parse(argc, argv)) return 0;
  const graph::CsrGraph g = graph::make_dataset(
      graph::dataset_from_name(cli.get("dataset")),
      static_cast<unsigned>(cli.get_int("scale")), cli.get_bool("weighted"),
      static_cast<std::uint64_t>(cli.get_int("seed")));
  graph::save_binary_file(g, cli.get("out"));
  std::cout << "wrote " << cli.get("out") << ": " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges\n";
  return 0;
}

int cmd_convert(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("in", "input text edge list", "");
  cli.add_option("out", "output path (binary CSR)", "graph.cxlg");
  cli.add_flag("symmetrize", "add reverse edges");
  if (!cli.parse(argc, argv)) return 0;
  std::ifstream is(cli.get("in"));
  if (!is) {
    std::cerr << "cannot open " << cli.get("in") << "\n";
    return 1;
  }
  const graph::CsrGraph g =
      graph::load_edge_list(is, cli.get_bool("symmetrize"));
  graph::save_binary_file(g, cli.get("out"));
  std::cout << "wrote " << cli.get("out") << ": " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges\n";
  return 0;
}

int cmd_info(int argc, char** argv) {
  util::CliParser cli;
  if (!cli.parse(argc, argv)) return 0;
  if (cli.positional().empty()) {
    std::cerr << "usage: cxlgraph info <graph.cxlg>\n";
    return 2;
  }
  const graph::CsrGraph g =
      graph::load_binary_file(cli.positional().front());
  const graph::DegreeStats s = graph::degree_stats(g);
  util::TablePrinter table({"Property", "Value"});
  table.add_row({"vertices", util::fmt_count(s.num_vertices)});
  table.add_row({"edges", util::fmt_count(s.num_edges)});
  table.add_row({"edge list", util::format_bytes(s.edge_list_bytes)});
  table.add_row({"weighted", g.weighted() ? "yes" : "no"});
  table.add_row({"avg degree (nonzero)", util::fmt(s.avg_degree_nonzero, 2)});
  table.add_row({"avg sublist", util::fmt(s.avg_sublist_bytes, 1) + " B"});
  table.add_row({"max degree", util::fmt_count(s.max_degree)});
  table.add_row({"isolated vertices",
                 util::fmt_count(s.zero_degree_vertices)});
  table.print(std::cout);
  return 0;
}

int cmd_reorder(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("in", "input binary CSR", "");
  cli.add_option("out", "output binary CSR", "");
  cli.add_option("order", "identity | degree-sorted | bfs | random",
                 "degree-sorted");
  cli.add_option("seed", "random seed", "42");
  if (!cli.parse(argc, argv)) return 0;
  const graph::CsrGraph g = graph::load_binary_file(cli.get("in"));
  const graph::CsrGraph out = graph::reorder(
      g, order_from(cli.get("order")),
      static_cast<std::uint64_t>(cli.get_int("seed")));
  graph::save_binary_file(out, cli.get("out"));
  std::cout << "wrote " << cli.get("out") << " in " << cli.get("order")
            << " order\n";
  return 0;
}

int cmd_run(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("graph", "binary CSR path (omit to generate)", "");
  cli.add_option("dataset", "generated dataset when --graph absent",
                 "urand");
  cli.add_option("scale", "generated scale", "16");
  cli.add_option("seed", "seed", "42");
  cli.add_option("algo",
                 "bfs | sssp | cc | pagerank-scan | bfs-dir-opt | "
                 "sssp-delta",
                 "bfs");
  cli.add_option("backend",
                 "host-dram | host-dram-remote | cxl | xlfdd | bam-nvme | "
                 "uvm",
                 "host-dram");
  cli.add_option("added-us", "CXL added latency [us]", "0");
  cli.add_option("alignment", "access alignment override [B]", "0");
  cli.add_option("shards",
                 "number of simulated GPU shards (>= 2 enables the "
                 "cluster path)",
                 "1");
  cli.add_option("partitioner",
                 "vertex-range | degree-balanced | hash-edge", "vertex-range");
  cli.add_option("reorder",
                 "per-shard local relabeling: none | shard-degree",
                 "none");
  cli.add_option("jobs", "worker threads for per-shard replays", "0");
  cli.add_flag("gen3", "use the Gen3 (Table-4) system preset");
  cli.add_flag("direct-cxl", "model a direct GPU-CXL path (Sec. 5)");
  add_telemetry_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const std::unique_ptr<obs::Telemetry> telemetry = make_telemetry(cli);

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  graph::CsrGraph g =
      cli.get("graph").empty()
          ? graph::make_dataset(
                graph::dataset_from_name(cli.get("dataset")),
                static_cast<unsigned>(cli.get_int("scale")),
                /*weighted=*/true, seed)
          : graph::load_binary_file(cli.get("graph"));

  core::SystemConfig cfg =
      cli.get_bool("gen3") ? core::table4_system() : core::table3_system();
  cfg.gpu_direct_cxl = cli.get_bool("direct-cxl");
  core::ExternalGraphRuntime runtime(cfg);

  core::RunRequest req;
  req.algorithm = core::algorithm_from_name(cli.get("algo"));
  req.backend = core::backend_from_name(cli.get("backend"));
  req.source_seed = seed;
  if (cli.get_double("added-us") > 0) {
    req.cxl_added_latency = util::ps_from_us(cli.get_double("added-us"));
  }
  if (cli.get_int("alignment") > 0) {
    req.alignment = static_cast<std::uint32_t>(cli.get_int("alignment"));
  }

  const std::int64_t shards_arg = cli.get_int("shards");
  const std::int64_t jobs_arg = cli.get_int("jobs");
  if (shards_arg < 1 || shards_arg > 4096) {
    throw std::invalid_argument("--shards must be in [1, 4096]");
  }
  if (jobs_arg < 0) throw std::invalid_argument("--jobs must be >= 0");
  const auto shards = static_cast<std::uint32_t>(shards_arg);
  if (shards >= 2) {
    core::ClusterRuntime cluster(cfg, static_cast<unsigned>(jobs_arg));
    cluster.set_telemetry(telemetry.get());
    core::ClusterRequest creq;
    creq.run = req;
    creq.num_shards = shards;
    creq.strategy = partition::strategy_from_name(cli.get("partitioner"));
    creq.reorder = partition::reorder_from_name(cli.get("reorder"));
    const core::ClusterReport r = cluster.run(g, creq);

    util::TablePrinter table({"Metric", "Value"});
    table.add_row({"algorithm", r.algorithm});
    table.add_row({"backend", r.backend + " (" + r.access_method + ")"});
    table.add_row({"shards", std::to_string(r.num_shards) + " x " +
                                 r.partitioner +
                                 (cli.get("reorder") == "none"
                                      ? ""
                                      : " + " + cli.get("reorder"))});
    table.add_row({"source", std::to_string(r.source)});
    table.add_row({"cluster runtime",
                   util::fmt(r.runtime_sec * 1e3, 3) + " ms"});
    table.add_row({"  compute (max shard per superstep)",
                   util::fmt(r.compute_sec * 1e3, 3) + " ms"});
    table.add_row({"  frontier exchange",
                   util::fmt(r.exchange_sec * 1e3, 3) + " ms"});
    table.add_row({"exchange traffic",
                   util::format_bytes(r.exchange_bytes) + " (" +
                       util::fmt_count(r.exchange_messages) + " msgs)"});
    table.add_row({"exchange ingress skew (max/mean)",
                   util::fmt(r.exchange_ingress_skew, 2)});
    table.add_row({"supersteps", util::fmt_count(r.supersteps)});
    if (req.algorithm == core::Algorithm::kBfsDirOpt) {
      std::uint64_t pull = 0;
      for (const std::uint8_t b : r.superstep_bottom_up) pull += b;
      table.add_row({"  pull (bottom-up) supersteps",
                     util::fmt_count(pull)});
    }
    if (req.algorithm == core::Algorithm::kSsspDelta) {
      table.add_row({"  bucket epochs", util::fmt_count(r.bucket_epochs)});
    }
    table.add_row({"D (fetched bytes, all shards)",
                   util::format_bytes(r.fetched_bytes)});
    table.add_row({"cut fraction", util::fmt(r.cut.cut_fraction, 3)});
    table.add_row({"edge imbalance", util::fmt(r.cut.edge_imbalance, 2)});
    table.add_row({"slowest shard compute",
                   util::fmt(r.max_shard_compute_sec * 1e3, 3) + " ms"});
    table.print(std::cout);
    return save_telemetry(cli, telemetry.get());
  }

  runtime.set_telemetry(telemetry.get());
  const core::RunReport r = runtime.run(g, req);

  util::TablePrinter table({"Metric", "Value"});
  table.add_row({"algorithm", r.algorithm});
  table.add_row({"backend", r.backend + " (" + r.access_method + ")"});
  table.add_row({"source", std::to_string(r.source)});
  table.add_row({"graph-processing time",
                 util::fmt(r.runtime_sec * 1e3, 3) + " ms"});
  table.add_row({"throughput", util::fmt(r.throughput_mbps, 0) + " MB/s"});
  table.add_row({"RAF (D/E)", util::fmt(r.raf, 3)});
  table.add_row({"avg transfer d", util::fmt(r.avg_transfer_bytes, 1) +
                                       " B"});
  table.add_row({"E (sublist bytes)", util::format_bytes(r.used_bytes)});
  table.add_row({"D (fetched bytes)", util::format_bytes(r.fetched_bytes)});
  table.add_row({"transactions", util::fmt_count(r.transactions)});
  table.add_row({"steps", util::fmt_count(r.steps)});
  table.add_row({"latency under load",
                 util::fmt(r.observed_read_latency_us, 2) + " us"});
  table.print(std::cout);
  return save_telemetry(cli, telemetry.get());
}

std::vector<std::string> split_on(const std::string& value, char sep) {
  std::vector<std::string> parts;
  std::string::size_type start = 0;
  while (start <= value.size()) {
    const std::string::size_type end = value.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(value.substr(start));
      break;
    }
    parts.push_back(value.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

/// "at_ms:class:from:to" (times in milliseconds), comma-separated.
std::vector<serve::MigrationPlan> parse_migrations(const std::string& spec) {
  std::vector<serve::MigrationPlan> plans;
  if (spec.empty()) return plans;
  for (const std::string& item : util::split_csv(spec)) {
    const std::vector<std::string> parts = split_on(item, ':');
    if (parts.size() != 4) {
      throw std::invalid_argument(
          "bad --migrate entry '" + item +
          "' (expected at_ms:class:from:to, e.g. 2.5:0:0:1)");
    }
    serve::MigrationPlan plan;
    plan.at_sec = std::stod(parts[0]) * 1e-3;
    plan.class_index = static_cast<std::uint32_t>(std::stoul(parts[1]));
    plan.from = static_cast<std::uint32_t>(std::stoul(parts[2]));
    plan.to = static_cast<std::uint32_t>(std::stoul(parts[3]));
    plans.push_back(plan);
  }
  return plans;
}

/// "class:max_in_flight", comma-separated.
std::vector<serve::TenantQuota> parse_quotas(const std::string& spec) {
  std::vector<serve::TenantQuota> quotas;
  if (spec.empty()) return quotas;
  for (const std::string& item : util::split_csv(spec)) {
    const std::vector<std::string> parts = split_on(item, ':');
    if (parts.size() != 2) {
      throw std::invalid_argument("bad --quota entry '" + item +
                                  "' (expected class:max, e.g. 0:2)");
    }
    serve::TenantQuota quota;
    quota.class_index = static_cast<std::uint32_t>(std::stoul(parts[0]));
    quota.max_in_flight = static_cast<std::uint32_t>(std::stoul(parts[1]));
    quotas.push_back(quota);
  }
  return quotas;
}

int cmd_serve(int argc, char** argv) {
  util::CliParser cli;
  cli.add_option("graph", "binary CSR path (omit to generate)", "");
  cli.add_option("dataset", "generated dataset when --graph absent",
                 "urand");
  cli.add_option("scale", "generated scale", "14");
  cli.add_option("seed", "seed (workload + dataset)", "42");
  cli.add_option("backend", "host-dram | host-dram-remote | cxl", "cxl");
  cli.add_option("mix",
                 "comma-separated algorithms sharing the stack",
                 "bfs,cc,pagerank-scan");
  cli.add_option("qps", "open-loop offered load [queries/s]", "500");
  cli.add_option("queries", "queries in the stream", "128");
  cli.add_option("policy", "fifo | round-robin | slo-priority", "fifo");
  cli.add_option("slo-us", "per-query latency objective [us]", "20000");
  cli.add_option("queue-cap",
                 "admission: max waiting queries (0 = unbounded)", "0");
  cli.add_option("quantum", "supersteps per preemptive turn", "4");
  cli.add_option("span-shards",
                 "route the first mix class across this many shards "
                 "(0 = single stack)",
                 "0");
  cli.add_option("clients", "closed-loop client count", "4");
  cli.add_option("think-us", "closed-loop mean think time [us]", "1000");
  cli.add_option("source-pool",
                 "distinct traversal sources (0 = one per query)", "8");
  cli.add_option("jobs", "worker threads for profiling", "0");
  cli.add_option("replicas", "fleet size (>= 2 replicates the stack)", "1");
  cli.add_option("router",
                 "random | join-shortest-queue | class-affinity "
                 "(engages the fleet path)",
                 "");
  cli.add_option("migrate",
                 "live migrations, comma-separated at_ms:class:from:to",
                 "");
  cli.add_option("quota",
                 "per-tenant admission caps, comma-separated class:max",
                 "");
  cli.add_option("elastic-max",
                 "elastic controller: grow up to this many replicas "
                 "(0 = fixed fleet)",
                 "0");
  cli.add_option("elastic-interval-us",
                 "elastic controller check interval [us]", "1000");
  cli.add_flag("slo-shed",
               "shed arrivals whose SLO is already infeasible");
  cli.add_option("faults",
                 "fault plan, comma-separated key=value (seed, horizon-ms, "
                 "crashes, restart-ms, provision-ms, io-bursts, "
                 "io-burst-ms, io-rate, io-retry-us, io-max-retries, "
                 "link-flaps, flap-ms, flap-derate, query-retries, "
                 "backoff-us); engages the fleet path",
                 "");
  cli.add_option("incidents-out",
                 "write the health monitor's incident log JSON here "
                 "(engages the fleet path)",
                 "");
  cli.add_flag("closed-loop",
               "closed-loop clients instead of open-loop Poisson");
  cli.add_flag("gen3", "use the Gen3 (Table-4) system preset");
  add_telemetry_options(cli);
  if (!cli.parse(argc, argv)) return 0;
  const std::unique_ptr<obs::Telemetry> telemetry = make_telemetry(cli);

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const graph::CsrGraph g =
      cli.get("graph").empty()
          ? graph::make_dataset(
                graph::dataset_from_name(cli.get("dataset")),
                static_cast<unsigned>(cli.get_int("scale")),
                /*weighted=*/true, seed)
          : graph::load_binary_file(cli.get("graph"));

  const auto jobs = cli.get_int("jobs");
  if (jobs < 0) throw std::invalid_argument("--jobs must be >= 0");
  serve::QueryServer server(
      cli.get_bool("gen3") ? core::table4_system() : core::table3_system(),
      static_cast<unsigned>(jobs));
  server.set_telemetry(telemetry.get());

  serve::ServeRequest req;
  req.base.backend = core::backend_from_name(cli.get("backend"));
  req.workload.seed = seed;
  req.workload.num_queries =
      static_cast<std::uint32_t>(cli.get_int("queries"));
  req.workload.source_pool =
      static_cast<std::uint32_t>(cli.get_int("source-pool"));
  if (cli.get_bool("closed-loop")) {
    req.workload.process = serve::ArrivalProcess::kClosedLoop;
    req.workload.num_clients =
        static_cast<std::uint32_t>(cli.get_int("clients"));
    req.workload.mean_think_time =
        util::ps_from_us(cli.get_double("think-us"));
  } else {
    req.workload.offered_qps = cli.get_double("qps");
  }
  const auto span_shards =
      static_cast<std::uint32_t>(cli.get_int("span-shards"));
  if (cli.get("mix").empty()) {
    throw std::invalid_argument(
        "serve: --mix must name at least one algorithm");
  }
  bool first_class = true;
  for (const std::string& name : util::split_csv(cli.get("mix"))) {
    serve::QueryClass cls;
    cls.algorithm = core::algorithm_from_name(name);
    cls.slo = util::ps_from_us(cli.get_double("slo-us"));
    if (first_class && span_shards >= 2) {
      cls.shards = span_shards;
      cls.strategy = partition::Strategy::kDegreeBalanced;
    }
    first_class = false;
    req.workload.mix.push_back(cls);
  }
  req.config.policy = serve::policy_from_name(cli.get("policy"));
  req.config.max_waiting =
      static_cast<std::uint32_t>(cli.get_int("queue-cap"));
  req.config.quantum_supersteps =
      static_cast<std::uint32_t>(cli.get_int("quantum"));

  // Any fleet option routes the request through serve::FleetServer.
  const auto replicas = static_cast<std::uint32_t>(cli.get_int("replicas"));
  const auto elastic_max =
      static_cast<std::uint32_t>(cli.get_int("elastic-max"));
  const bool fleet_path = replicas >= 2 || !cli.get("router").empty() ||
                          !cli.get("migrate").empty() ||
                          !cli.get("quota").empty() || elastic_max > 0 ||
                          cli.get_bool("slo-shed") ||
                          !cli.get("faults").empty() ||
                          !cli.get("incidents-out").empty();
  if (fleet_path) {
    if (replicas == 0) {
      throw std::invalid_argument("--replicas must be >= 1");
    }
    serve::FleetRequest freq;
    freq.base = req.base;
    freq.workload = req.workload;
    freq.fleet.serve = req.config;
    freq.fleet.replicas = replicas;
    if (!cli.get("router").empty()) {
      freq.fleet.router = serve::router_from_name(cli.get("router"));
    }
    freq.fleet.migrations = parse_migrations(cli.get("migrate"));
    freq.fleet.quotas = parse_quotas(cli.get("quota"));
    freq.fleet.slo_shedding = cli.get_bool("slo-shed");
    if (elastic_max > 0) {
      freq.fleet.elastic.enabled = true;
      freq.fleet.elastic.max_replicas = elastic_max;
      freq.fleet.elastic.check_interval_sec =
          cli.get_double("elastic-interval-us") * 1e-6;
    }
    if (!cli.get("faults").empty()) {
      freq.fleet.faults = fault::parse_fault_spec(cli.get("faults"));
    }
    serve::FleetServer fleet_server(cli.get_bool("gen3")
                                        ? core::table4_system()
                                        : core::table3_system(),
                                    static_cast<unsigned>(jobs));
    fleet_server.set_telemetry(telemetry.get());
    const serve::FleetReport fr = fleet_server.serve(g, freq);
    const serve::ServeReport& s = fr.serve;
    if (!s.conservation_ok()) {
      std::cerr << "error: serve byte-conservation check failed: link "
                << s.link_bytes << " != queries " << s.query_bytes
                << " + lost " << s.lost_bytes << "\n";
      return 1;
    }
    util::TablePrinter table({"Metric", "Value"});
    table.add_row({"backend", s.backend + " (" + s.access_method + ")"});
    table.add_row({"fleet", std::to_string(fr.replicas) + " replicas (" +
                                fr.router + " router), peak " +
                                std::to_string(fr.peak_replicas)});
    table.add_row({"policy", s.policy + " / " + s.process});
    table.add_row({"queries",
                   util::fmt_count(s.offered) + " offered, " +
                       util::fmt_count(s.completed) + " completed, " +
                       util::fmt_count(s.shed) + " shed"});
    table.add_row({"shed (queue/quota/slo)",
                   std::to_string(fr.shed_queue) + " / " +
                       std::to_string(fr.shed_quota) + " / " +
                       std::to_string(fr.shed_deadline)});
    table.add_row({"makespan",
                   util::fmt(s.makespan_sec * 1e3, 3) + " ms"});
    table.add_row({"completed throughput",
                   util::fmt(s.completed_qps, 1) + " qps"});
    table.add_row({"goodput (within SLO)",
                   util::fmt(s.goodput_qps, 1) + " qps"});
    table.add_row({"latency p50 / p95 / p99",
                   util::fmt(s.latency_us.p50 / 1e3, 3) + " / " +
                       util::fmt(s.latency_us.p95 / 1e3, 3) + " / " +
                       util::fmt(s.latency_us.p99 / 1e3, 3) + " ms"});
    table.add_row({"fleet utilization", util::fmt(s.utilization, 3)});
    table.add_row({"shared-link bytes", util::format_bytes(s.link_bytes)});
    if (!fr.migrations.empty()) {
      table.add_row({"migrations",
                     util::fmt_count(fr.migrations.size()) + " (" +
                         util::format_bytes(fr.migration_bytes) +
                         " state copied, " +
                         util::fmt(fr.migration_sec * 1e6, 1) + " us)"});
    }
    if (freq.fleet.faults.enabled()) {
      table.add_row({"queries failed", util::fmt_count(s.failed)});
      table.add_row({"availability", util::fmt(fr.availability, 4)});
      table.add_row({"crashes / restarts / replacements",
                     std::to_string(fr.crashes) + " / " +
                         std::to_string(fr.restarts) + " / " +
                         std::to_string(fr.replacements)});
      table.add_row({"query retries", util::fmt_count(s.query_retries)});
      table.add_row({"lost work",
                     util::fmt(s.lost_work_sec * 1e3, 3) + " ms, " +
                         util::format_bytes(s.lost_bytes)});
      table.add_row({"io retries / link windows",
                     std::to_string(fr.io_error_retries) + " / " +
                         std::to_string(fr.link_degrade_windows)});
    }
    if (!fr.incidents.empty()) {
      std::uint32_t open = 0;
      for (const obs::Incident& inc : fr.incidents) {
        if (inc.open) ++open;
      }
      table.add_row({"health incidents",
                     util::fmt_count(fr.incidents.size()) + " (" +
                         std::to_string(open) + " still open)"});
    }
    table.print(std::cout);
    for (const serve::ReplicaStats& rs : fr.replica_stats) {
      std::cout << "  replica " << rs.replica << ": "
                << util::fmt_count(rs.served) << " served, util "
                << util::fmt(rs.utilization, 3)
                << (rs.retired ? " (retired)" : "") << "\n";
    }
    for (const serve::ScalingEvent& ev : fr.scaling_events) {
      std::cout << "  " << (ev.added ? "scale-up" : "scale-down") << " t="
                << util::fmt(ev.at_sec * 1e3, 3) << " ms: p99 "
                << util::fmt(ev.p99_before_us / 1e3, 3) << " -> "
                << util::fmt(ev.p99_after_us / 1e3, 3) << " ms";
      if (ev.incident >= 0) std::cout << " (incident #" << ev.incident << ")";
      std::cout << "\n";
    }
    if (!cli.get("incidents-out").empty()) {
      if (!serve::save_incident_log(cli.get("incidents-out"), fr)) {
        std::cerr << "error: cannot write " << cli.get("incidents-out")
                  << "\n";
        return 1;
      }
      std::cout << "incident log written to " << cli.get("incidents-out")
                << "\n";
    }
    return save_telemetry(cli, telemetry.get());
  }

  const serve::ServeReport r = server.serve(g, req);
  if (!r.conservation_ok()) {
    std::cerr << "error: serve byte-conservation check failed: link "
              << r.link_bytes << " != queries " << r.query_bytes
              << " + lost " << r.lost_bytes << "\n";
    return 1;
  }

  util::TablePrinter table({"Metric", "Value"});
  table.add_row({"backend", r.backend + " (" + r.access_method + ")"});
  table.add_row({"policy", r.policy + " / " + r.process});
  table.add_row({"queries",
                 util::fmt_count(r.offered) + " offered, " +
                     util::fmt_count(r.completed) + " completed, " +
                     util::fmt_count(r.shed) + " shed"});
  table.add_row({"makespan", util::fmt(r.makespan_sec * 1e3, 3) + " ms"});
  table.add_row({"completed throughput",
                 util::fmt(r.completed_qps, 1) + " qps"});
  table.add_row({"goodput (within SLO)",
                 util::fmt(r.goodput_qps, 1) + " qps"});
  table.add_row({"SLO violation rate",
                 util::fmt(r.slo_violation_rate, 3)});
  table.add_row({"latency p50 / p95 / p99",
                 util::fmt(r.latency_us.p50 / 1e3, 3) + " / " +
                     util::fmt(r.latency_us.p95 / 1e3, 3) + " / " +
                     util::fmt(r.latency_us.p99 / 1e3, 3) + " ms"});
  table.add_row({"streaming p99 (P2)",
                 util::fmt(r.streaming_p99_us / 1e3, 3) + " ms"});
  table.add_row({"P2 max rel error", util::fmt(r.p2_max_rel_error, 4)});
  table.add_row({"time in queue / in service",
                 util::fmt(r.time_in_queue_sec * 1e3, 3) + " / " +
                     util::fmt(r.time_in_service_sec * 1e3, 3) + " ms"});
  table.add_row({"server utilization", util::fmt(r.utilization, 3)});
  table.add_row({"shared-link bytes", util::format_bytes(r.link_bytes)});
  table.add_row({"distinct profiles",
                 util::fmt_count(r.profiles.size())});
  table.print(std::cout);
  return save_telemetry(cli, telemetry.get());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  // Shift argv so subcommand parsers see their own options.
  int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  try {
    if (command == "generate") return cmd_generate(sub_argc, sub_argv);
    if (command == "convert") return cmd_convert(sub_argc, sub_argv);
    if (command == "info") return cmd_info(sub_argc, sub_argv);
    if (command == "reorder") return cmd_reorder(sub_argc, sub_argv);
    if (command == "run") return cmd_run(sub_argc, sub_argv);
    if (command == "serve") return cmd_serve(sub_argc, sub_argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
