// fleet_report: fold a fleet serve run's observability artifacts — the
// Chrome trace export, the metrics snapshot, and the health monitor's
// incident log — into per-replica / per-tenant tables plus a merged
// migration/scaling/incident timeline.
//
//   fleet_report --trace fleet_trace.json --metrics fleet_metrics.json
//                --incidents incidents.json     (one command line)
//
// Any subset of the three inputs works; each section prints from
// whichever artifact carries it. Exit status: 0 on success, 1 on parse
// errors or bad usage.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_check.hpp"

namespace {

using cxlgraph::obs::JsonValue;

void usage() {
  std::cerr << "usage: fleet_report [--trace trace.json] "
               "[--metrics metrics.json] [--incidents incidents.json]\n";
}

JsonValue load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return cxlgraph::obs::parse_json(in);
}

double num_or(const JsonValue* v, double fallback) {
  return (v != nullptr && v->type == JsonValue::Type::kNumber) ? v->number
                                                               : fallback;
}

std::string str_or(const JsonValue* v, const std::string& fallback) {
  return (v != nullptr && v->type == JsonValue::Type::kString) ? v->string
                                                               : fallback;
}

// ---------------------------------------------------------------------------
// Trace section: the per-track summary (replica rows included), via the
// same validated fold trace_summary uses.
// ---------------------------------------------------------------------------

void print_trace_section(const JsonValue& doc) {
  const cxlgraph::obs::TraceCheckResult check =
      cxlgraph::obs::check_trace(doc);
  if (!check.ok) throw std::runtime_error("invalid trace: " + check.error);
  std::printf("== trace: %zu events, %zu query flows ==\n", check.events,
              check.flows);
  std::printf("%-12s %-24s %8s %8s %8s %14s %7s\n", "process", "thread",
              "spans", "instants", "flows", "busy (us)", "util");
  for (const cxlgraph::obs::TrackSummary& t :
       cxlgraph::obs::summarize_trace(doc)) {
    std::printf("%-12s %-24s %8llu %8llu %8llu %14.3f %6.1f%%\n",
                t.process.c_str(), t.thread.c_str(),
                static_cast<unsigned long long>(t.spans),
                static_cast<unsigned long long>(t.instants),
                static_cast<unsigned long long>(t.flow_events), t.busy_us,
                100.0 * t.utilization());
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Metrics section: pivot the labeled fleet metrics into per-replica and
// per-tenant tables.
// ---------------------------------------------------------------------------

void print_metrics_section(const JsonValue& doc) {
  const JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::kArray) {
    throw std::runtime_error("metrics document has no metrics array");
  }
  // scope value ("replica=K" / "tenant=C" suffix) -> metric name -> value.
  std::map<std::string, std::map<std::string, double>> replica_rows;
  std::map<std::string, std::map<std::string, double>> tenant_rows;
  for (const JsonValue& m : metrics->array) {
    if (str_or(m.find("component"), "") != "fleet") continue;
    const std::string label = str_or(m.find("label"), "");
    const std::string name = str_or(m.find("name"), "");
    const double value = num_or(m.find("value"), 0.0);
    if (label.rfind("replica=", 0) == 0) {
      replica_rows[label.substr(8)][name] = value;
    } else if (label.rfind("tenant=", 0) == 0) {
      tenant_rows[label.substr(7)][name] = value;
    }
  }
  if (!replica_rows.empty()) {
    std::printf("== per-replica metrics ==\n");
    std::printf("%-8s %10s %10s %12s\n", "replica", "served", "handoffs",
                "utilization");
    for (const auto& [replica, row] : replica_rows) {
      const auto get = [&row = row](const char* k) {
        const auto it = row.find(k);
        return it != row.end() ? it->second : 0.0;
      };
      std::printf("%-8s %10.0f %10.0f %12.3f\n", replica.c_str(),
                  get("served"), get("handoffs"), get("utilization"));
    }
    std::printf("\n");
  }
  if (!tenant_rows.empty()) {
    std::printf("== per-tenant metrics ==\n");
    std::printf("%-8s %10s %10s %10s %14s\n", "tenant", "completed",
                "goodput", "shed", "slo_violations");
    for (const auto& [tenant, row] : tenant_rows) {
      const auto get = [&row = row](const char* k) {
        const auto it = row.find(k);
        return it != row.end() ? it->second : 0.0;
      };
      std::printf("%-8s %10.0f %10.0f %10.0f %14.0f\n", tenant.c_str(),
                  get("completed"), get("goodput"), get("shed"),
                  get("slo_violations"));
    }
    std::printf("\n");
  }
}

// ---------------------------------------------------------------------------
// Incident section: the incident table plus a merged timeline of
// incident opens/closes, scaling decisions, and migrations.
// ---------------------------------------------------------------------------

struct TimelineEntry {
  double at_ms = 0.0;
  std::string text;
};

void print_incident_section(const JsonValue& doc) {
  const JsonValue* incidents = doc.find("incidents");
  if (incidents == nullptr || incidents->type != JsonValue::Type::kArray) {
    throw std::runtime_error("incident log has no incidents array");
  }
  std::vector<TimelineEntry> timeline;

  std::printf("== incidents: %zu ==\n", incidents->array.size());
  std::printf("%-4s %-15s %-9s %-10s %12s %12s %8s %8s\n", "id", "kind",
              "severity", "subject", "opened (ms)", "closed (ms)", "peak",
              "thr");
  for (const JsonValue& inc : incidents->array) {
    const double id = num_or(inc.find("id"), 0);
    const std::string kind = str_or(inc.find("kind"), "?");
    const std::string subject = str_or(inc.find("subject"), "?");
    const bool open = inc.find("open") != nullptr && inc.find("open")->boolean;
    const double opened_ms = num_or(inc.find("opened_ps"), 0) / 1e9;
    const double closed_ms = num_or(inc.find("closed_ps"), 0) / 1e9;
    const double peak = num_or(inc.find("peak"), 0);
    const double threshold = num_or(inc.find("threshold"), 0);
    char closed_buf[32];
    if (open) {
      std::snprintf(closed_buf, sizeof(closed_buf), "%12s", "open");
    } else {
      std::snprintf(closed_buf, sizeof(closed_buf), "%12.3f", closed_ms);
    }
    std::printf("%-4.0f %-15s %-9s %-10s %12.3f %s %8.2f %8.2f\n", id,
                kind.c_str(), str_or(inc.find("severity"), "?").c_str(),
                subject.c_str(), opened_ms, closed_buf, peak, threshold);
    timeline.push_back({opened_ms, "incident #" + std::to_string(int(id)) +
                                       " open  " + kind + " (" + subject +
                                       ")"});
    if (!open) {
      timeline.push_back({closed_ms, "incident #" + std::to_string(int(id)) +
                                         " close " + kind});
    }
  }
  std::printf("\n");

  if (const JsonValue* scaling = doc.find("scaling");
      scaling != nullptr && scaling->type == JsonValue::Type::kArray) {
    for (const JsonValue& ev : scaling->array) {
      const double at_ms = num_or(ev.find("at_sec"), 0) * 1e3;
      const double incident = num_or(ev.find("incident"), -1);
      std::string text = str_or(ev.find("action"), "?") + " replica " +
                         std::to_string(int(num_or(ev.find("replica"), 0))) +
                         " (depth/replica " +
                         std::to_string(num_or(ev.find("depth_per_replica"),
                                               0));
      text.erase(text.find_last_not_of('0') + 1);  // trim double tail
      if (!text.empty() && text.back() == '.') text.pop_back();
      text += ")";
      if (incident >= 0) {
        text += " <- incident #" + std::to_string(int(incident));
      }
      timeline.push_back({at_ms, text});
    }
  }
  if (const JsonValue* migrations = doc.find("migrations");
      migrations != nullptr &&
      migrations->type == JsonValue::Type::kArray) {
    for (const JsonValue& m : migrations->array) {
      const double at_ms = num_or(m.find("start_sec"), 0) * 1e3;
      const double copy_us = num_or(m.find("copy_sec"), 0) * 1e6;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "migrate class %d: replica %d -> %d (%d waiting%s, "
                    "%.0f B state, %.1f us copy)",
                    int(num_or(m.find("class"), 0)),
                    int(num_or(m.find("from"), 0)),
                    int(num_or(m.find("to"), 0)),
                    int(num_or(m.find("moved_waiting"), 0)),
                    (m.find("moved_active") != nullptr &&
                     m.find("moved_active")->boolean)
                        ? " + in-flight"
                        : "",
                    num_or(m.find("state_bytes"), 0), copy_us);
      timeline.push_back({at_ms, buf});
    }
  }

  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TimelineEntry& a, const TimelineEntry& b) {
                     return a.at_ms < b.at_ms;
                   });
  std::printf("== timeline ==\n");
  for (const TimelineEntry& e : timeline) {
    std::printf("  [%10.3f ms] %s\n", e.at_ms, e.text.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path, incidents_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(1);
      }
      return argv[++i];
    };
    if (arg == "--trace") {
      trace_path = next();
    } else if (arg == "--metrics") {
      metrics_path = next();
    } else if (arg == "--incidents") {
      incidents_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "fleet_report: unknown argument " << arg << "\n";
      usage();
      return 1;
    }
  }
  if (trace_path.empty() && metrics_path.empty() && incidents_path.empty()) {
    usage();
    return 1;
  }

  try {
    if (!trace_path.empty()) print_trace_section(load_json(trace_path));
    if (!metrics_path.empty()) print_metrics_section(load_json(metrics_path));
    if (!incidents_path.empty()) {
      print_incident_section(load_json(incidents_path));
    }
  } catch (const std::exception& e) {
    std::cerr << "fleet_report: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
