// trace_summary: fold a Chrome trace-event JSON file (as written by
// --trace-out) into a per-track utilization table, or just validate it.
//
//   trace_summary trace.json            # utilization table
//   trace_summary --check trace.json    # schema validation only
//   trace_summary --csv trace.json      # machine-readable rows
//
// Exit status: 0 on a valid trace, 1 on schema/parse errors or bad usage.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/trace_check.hpp"

namespace {

void usage() {
  std::cerr << "usage: trace_summary [--check] [--csv] <trace.json>\n";
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  bool csv = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "trace_summary: unknown option " << arg << "\n";
      usage();
      return 1;
    } else if (path.empty()) {
      path = arg;
    } else {
      usage();
      return 1;
    }
  }
  if (path.empty()) {
    usage();
    return 1;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "trace_summary: cannot open " << path << "\n";
    return 1;
  }

  cxlgraph::obs::JsonValue doc;
  try {
    doc = cxlgraph::obs::parse_json(in);
  } catch (const std::exception& e) {
    std::cerr << "trace_summary: " << e.what() << "\n";
    return 1;
  }

  const cxlgraph::obs::TraceCheckResult check =
      cxlgraph::obs::check_trace(doc);
  if (!check.ok) {
    std::cerr << "trace_summary: invalid trace: " << check.error << "\n";
    return 1;
  }
  if (check_only) {
    std::printf("trace OK: %zu events (%zu spans, %zu instants, "
                "%zu counters, %zu metadata, %zu flows/%zu flow events)\n",
                check.events, check.spans, check.instants, check.counters,
                check.metadata, check.flows, check.flow_events);
    return 0;
  }

  const std::vector<cxlgraph::obs::TrackSummary> tracks =
      cxlgraph::obs::summarize_trace(doc);
  if (csv) {
    std::printf("process,thread,spans,instants,flows,busy_us,window_us,util\n");
    for (const auto& t : tracks) {
      std::printf("%s,%s,%llu,%llu,%llu,%.3f,%.3f,%.4f\n", t.process.c_str(),
                  t.thread.c_str(), static_cast<unsigned long long>(t.spans),
                  static_cast<unsigned long long>(t.instants),
                  static_cast<unsigned long long>(t.flow_events), t.busy_us,
                  t.last_us - t.first_us, t.utilization());
    }
    return 0;
  }

  std::printf("%-12s %-24s %8s %8s %8s %14s %14s %7s\n", "process", "thread",
              "spans", "instants", "flows", "busy (us)", "window (us)",
              "util");
  for (const auto& t : tracks) {
    std::printf("%-12s %-24s %8llu %8llu %8llu %14.3f %14.3f %6.1f%%\n",
                t.process.c_str(), t.thread.c_str(),
                static_cast<unsigned long long>(t.spans),
                static_cast<unsigned long long>(t.instants),
                static_cast<unsigned long long>(t.flow_events), t.busy_us,
                t.last_us - t.first_us, 100.0 * t.utilization());
  }
  return 0;
}
